// Package workloads defines behavioural profiles for every benchmark the
// paper characterizes: ten SPEC CPU2006 programs (Fig. 4/5), the NAS
// parallel benchmarks (Fig. 6), the four Rodinia HPC applications used for
// the DRAM experiments (Fig. 8), the stencil kernel of the access-pattern
// scheduling study, and the end-to-end Jammer detector (Fig. 9).
//
// A profile captures the features the guardband experiments actually depend
// on — instruction mix (which sets average supply current and throughput),
// memory-locality structure, resident data behaviour in DRAM, resonant
// current content, and sustained memory bandwidth — not the licensed
// benchmark codes themselves. Values are behavioural calibrations chosen so
// the characterization framework reproduces the paper's figures; they are
// inputs of the reproduction in the same sense the real binaries were
// inputs of the original study.
package workloads

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/dram"
	"repro/internal/isa"
	"repro/internal/microarch"
	"repro/internal/silicon"
)

// Suite identifies the benchmark suite a profile belongs to.
type Suite int

const (
	// SPEC is SPEC CPU2006.
	SPEC Suite = iota + 1
	// NAS is the NAS Parallel Benchmarks.
	NAS
	// Rodinia is the Rodinia HPC suite.
	Rodinia
	// Synthetic marks crafted kernels (stencil, microbenchmarks).
	Synthetic
	// Application marks end-to-end applications (the Jammer detector).
	Application
)

// String names the suite.
func (s Suite) String() string {
	switch s {
	case SPEC:
		return "SPEC2006"
	case NAS:
		return "NAS"
	case Rodinia:
		return "Rodinia"
	case Synthetic:
		return "synthetic"
	case Application:
		return "application"
	default:
		return fmt.Sprintf("Suite(%d)", int(s))
	}
}

// Profile is the behavioural description of one benchmark.
type Profile struct {
	Name  string
	Suite Suite
	// Mix is the instruction-class distribution (drives current draw,
	// IPC and the droop base term).
	Mix isa.Mix
	// Stream describes cache-level memory locality.
	Stream microarch.StreamSpec
	// Mem describes DRAM-resident data behaviour for retention scans.
	Mem dram.WorkloadMem
	// ResonantCurrentA is the workload's supply-current content at the PDN
	// resonant frequency (amperes). Real programs have little; only
	// crafted dI/dt viruses approach the ~4.4 A square-wave reference.
	ResonantCurrentA float64
	// CacheStress reports whether the program exercises cache SRAM hard
	// enough to expose low-voltage SRAM weakness before logic fails.
	CacheStress bool
	// DRAMBandwidthGBs is the sustained full-system memory bandwidth of
	// the paper's 8-core deployment (drives DRAM access power in Fig. 8b).
	DRAMBandwidthGBs float64
	// Duration is the nominal single-run time at 2.4 GHz, used by the
	// campaign scheduler and watchdog sizing.
	Duration time.Duration
}

// AvgCurrentA returns the cycle-weighted mean supply current of the
// profile's instruction mix.
func (p Profile) AvgCurrentA() float64 { return p.Mix.AvgCurrentA() }

// DroopInput assembles the silicon droop-model input for this profile
// running with the given number of active full-speed cores.
func (p Profile) DroopInput(activeFastCores int) silicon.DroopInput {
	return silicon.DroopInput{
		AvgCurrentA:      p.AvgCurrentA(),
		ResonantCurrentA: p.ResonantCurrentA,
		ActiveFastCores:  activeFastCores,
	}
}

// Validate checks internal consistency of the profile.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workloads: empty profile name")
	}
	if err := p.Mix.Validate(); err != nil {
		return fmt.Errorf("workloads: %s mix: %w", p.Name, err)
	}
	if err := p.Stream.Validate(); err != nil {
		return fmt.Errorf("workloads: %s stream: %w", p.Name, err)
	}
	if err := p.Mem.Validate(); err != nil {
		return fmt.Errorf("workloads: %s mem: %w", p.Name, err)
	}
	if p.ResonantCurrentA < 0 {
		return fmt.Errorf("workloads: %s negative resonant current", p.Name)
	}
	if p.DRAMBandwidthGBs < 0 {
		return fmt.Errorf("workloads: %s negative bandwidth", p.Name)
	}
	if p.Duration <= 0 {
		return fmt.Errorf("workloads: %s non-positive duration", p.Name)
	}
	return nil
}

// stream is a shorthand constructor for StreamSpec literals.
func stream(footMB int64, seq, stride, random float64, strideB int64, hotFrac float64, hotKB int64) microarch.StreamSpec {
	return microarch.StreamSpec{
		FootprintBytes: footMB << 20,
		SeqFrac:        seq,
		StrideFrac:     stride,
		RandomFrac:     random,
		StrideBytes:    strideB,
		HotFrac:        hotFrac,
		HotBytes:       hotKB << 10,
	}
}

// mem is a shorthand constructor for WorkloadMem literals.
func mem(footGB float64, hot float64, reuse time.Duration, randFrac float64) dram.WorkloadMem {
	return dram.WorkloadMem{
		FootprintBytes: int64(footGB * float64(1<<30)),
		HotFraction:    hot,
		ReuseInterval:  reuse,
		RandomDataFrac: randFrac,
	}
}

// specProfiles holds the ten SPEC CPU2006 programs of Fig. 4. The mixes
// are calibrated (jointly with internal/silicon's droop constants) so the
// measured Vmin on the TTT chip's most robust core spans 860-885 mV with
// mcf at the bottom (memory-stalled, low current) and cactusADM at the top
// (dense FP/SIMD, high current) — the workload-dependence the paper reports.
var specProfiles = []Profile{
	{
		Name: "mcf", Suite: SPEC,
		Mix: isa.Mix{
			isa.IntALU: 0.30, isa.Branch: 0.12, isa.LoadL1: 0.30,
			isa.LoadL2: 0.08, isa.LoadDRAM: 0.08, isa.Store: 0.12,
		},
		Stream:           stream(1700, 0.1, 0.2, 0.7, 256, 0.3, 256),
		Mem:              mem(1.7, 0.25, 400*time.Millisecond, 0.55),
		ResonantCurrentA: 0.10,
		CacheStress:      true,
		DRAMBandwidthGBs: 18,
		Duration:         70 * time.Second,
	},
	{
		Name: "lbm", Suite: SPEC,
		Mix: isa.Mix{
			isa.FPALU: 0.22, isa.FPSIMD: 0.08, isa.LoadL1: 0.28,
			isa.LoadDRAM: 0.05, isa.Store: 0.22, isa.IntALU: 0.10, isa.Branch: 0.05,
		},
		Stream:           stream(400, 0.8, 0.1, 0.1, 1024, 0, 0),
		Mem:              mem(0.4, 0.6, 150*time.Millisecond, 0.75),
		ResonantCurrentA: 0.15,
		CacheStress:      true,
		DRAMBandwidthGBs: 24,
		Duration:         60 * time.Second,
	},
	{
		Name: "bwaves", Suite: SPEC,
		Mix: isa.Mix{
			isa.FPALU: 0.25, isa.FPSIMD: 0.05, isa.LoadL1: 0.30,
			isa.LoadL2: 0.06, isa.LoadDRAM: 0.04, isa.Store: 0.15,
			isa.IntALU: 0.10, isa.Branch: 0.05,
		},
		Stream:           stream(900, 0.7, 0.2, 0.1, 512, 0, 0),
		Mem:              mem(0.9, 0.5, 200*time.Millisecond, 0.8),
		ResonantCurrentA: 0.12,
		CacheStress:      true,
		DRAMBandwidthGBs: 16,
		Duration:         90 * time.Second,
	},
	{
		Name: "milc", Suite: SPEC,
		Mix: isa.Mix{
			isa.FPALU: 0.30, isa.LoadL1: 0.25, isa.LoadL2: 0.08,
			isa.LoadDRAM: 0.03, isa.Store: 0.12, isa.IntALU: 0.15, isa.Branch: 0.07,
		},
		Stream:           stream(680, 0.5, 0.3, 0.2, 384, 0.2, 512),
		Mem:              mem(0.68, 0.4, 300*time.Millisecond, 0.85),
		ResonantCurrentA: 0.14,
		CacheStress:      true,
		DRAMBandwidthGBs: 12,
		Duration:         75 * time.Second,
	},
	{
		Name: "gcc", Suite: SPEC,
		Mix: isa.Mix{
			isa.IntALU: 0.35, isa.IntMul: 0.05, isa.Branch: 0.15,
			isa.LoadL1: 0.25, isa.LoadL2: 0.05, isa.LoadDRAM: 0.015, isa.Store: 0.135,
		},
		Stream:           stream(120, 0.3, 0.2, 0.5, 128, 0.5, 1024),
		Mem:              mem(0.12, 0.6, 100*time.Millisecond, 0.6),
		ResonantCurrentA: 0.18,
		CacheStress:      true,
		DRAMBandwidthGBs: 5,
		Duration:         45 * time.Second,
	},
	{
		Name: "leslie3d", Suite: SPEC,
		Mix: isa.Mix{
			isa.FPALU: 0.30, isa.FPSIMD: 0.12, isa.LoadL1: 0.28,
			isa.LoadL2: 0.05, isa.LoadDRAM: 0.02, isa.Store: 0.13,
			isa.IntALU: 0.06, isa.Branch: 0.04,
		},
		Stream:           stream(130, 0.7, 0.2, 0.1, 768, 0, 0),
		Mem:              mem(0.13, 0.5, 250*time.Millisecond, 0.8),
		ResonantCurrentA: 0.20,
		CacheStress:      true,
		DRAMBandwidthGBs: 10,
		Duration:         80 * time.Second,
	},
	{
		Name: "dealII", Suite: SPEC,
		Mix: isa.Mix{
			isa.FPALU: 0.35, isa.FPSIMD: 0.15, isa.LoadL1: 0.25,
			isa.LoadL2: 0.03, isa.Store: 0.10, isa.IntALU: 0.08, isa.Branch: 0.04,
		},
		Stream:           stream(90, 0.4, 0.3, 0.3, 256, 0.4, 2048),
		Mem:              mem(0.09, 0.7, 120*time.Millisecond, 0.7),
		ResonantCurrentA: 0.25,
		CacheStress:      true,
		DRAMBandwidthGBs: 4,
		Duration:         65 * time.Second,
	},
	{
		Name: "gromacs", Suite: SPEC,
		Mix: isa.Mix{
			isa.FPALU: 0.38, isa.FPSIMD: 0.20, isa.LoadL1: 0.22,
			isa.Store: 0.08, isa.IntALU: 0.08, isa.Branch: 0.04,
		},
		Stream:           stream(30, 0.5, 0.3, 0.2, 128, 0.6, 512),
		Mem:              mem(0.03, 0.8, 60*time.Millisecond, 0.65),
		ResonantCurrentA: 0.28,
		CacheStress:      true,
		DRAMBandwidthGBs: 2,
		Duration:         55 * time.Second,
	},
	{
		Name: "namd", Suite: SPEC,
		Mix: isa.Mix{
			isa.FPALU: 0.32, isa.FPSIMD: 0.30, isa.LoadL1: 0.20,
			isa.Store: 0.08, isa.IntALU: 0.06, isa.Branch: 0.04,
		},
		Stream:           stream(45, 0.4, 0.4, 0.2, 192, 0.5, 1024),
		Mem:              mem(0.045, 0.8, 70*time.Millisecond, 0.7),
		ResonantCurrentA: 0.30,
		CacheStress:      true,
		DRAMBandwidthGBs: 2.5,
		Duration:         85 * time.Second,
	},
	{
		Name: "cactusADM", Suite: SPEC,
		Mix: isa.Mix{
			isa.FPALU: 0.15, isa.FPSIMD: 0.70, isa.LoadL1: 0.08,
			isa.Store: 0.03, isa.IntALU: 0.03, isa.Branch: 0.01,
		},
		Stream:           stream(180, 0.6, 0.3, 0.1, 512, 0, 0),
		Mem:              mem(0.18, 0.6, 150*time.Millisecond, 0.8),
		ResonantCurrentA: 0.30,
		CacheStress:      true,
		DRAMBandwidthGBs: 7,
		Duration:         95 * time.Second,
	},
}

// nasProfiles models the NAS parallel benchmarks of Fig. 6.
var nasProfiles = []Profile{
	nasProfile("bt", 0.28, 0.16, 0.24, 0.02, 0.20),
	nasProfile("cg", 0.12, 0.04, 0.34, 0.05, 0.12),
	nasProfile("ep", 0.40, 0.22, 0.12, 0.00, 0.30),
	nasProfile("ft", 0.30, 0.14, 0.26, 0.03, 0.22),
	nasProfile("is", 0.06, 0.00, 0.36, 0.05, 0.10),
	nasProfile("lu", 0.26, 0.12, 0.26, 0.02, 0.18),
	nasProfile("mg", 0.22, 0.10, 0.30, 0.04, 0.16),
	nasProfile("sp", 0.28, 0.14, 0.26, 0.02, 0.20),
}

// nasProfile builds a NAS profile from its FP, SIMD, load and DRAM-miss
// intensities; remaining fractions fill with integer work.
func nasProfile(name string, fp, simd, l1, dramFrac, resA float64) Profile {
	store := 0.10
	branch := 0.05
	intFrac := 1 - fp - simd - l1 - dramFrac - store - branch
	return Profile{
		Name: name, Suite: NAS,
		Mix: isa.Mix{
			isa.FPALU: fp, isa.FPSIMD: simd, isa.LoadL1: l1,
			isa.LoadDRAM: dramFrac, isa.Store: store,
			isa.IntALU: intFrac, isa.Branch: branch,
		},
		Stream:           stream(600, 0.6, 0.2, 0.2, 512, 0.2, 1024),
		Mem:              mem(0.6, 0.5, 200*time.Millisecond, 0.75),
		ResonantCurrentA: resA,
		CacheStress:      true,
		DRAMBandwidthGBs: 8,
		Duration:         60 * time.Second,
	}
}

// rodiniaProfiles models the four Rodinia applications of the DRAM study
// (Fig. 8). Their DRAM-side behaviour is what matters there: nw touches a
// large footprint with little reuse at low bandwidth (so refresh dominates
// its DRAM power: the 27.3% saving), while kmeans streams at very high
// bandwidth (access power dominates: only 9.4%).
var rodiniaProfiles = []Profile{
	{
		Name: "backprop", Suite: Rodinia,
		Mix: isa.Mix{
			isa.FPALU: 0.30, isa.FPSIMD: 0.10, isa.LoadL1: 0.28,
			isa.LoadL2: 0.04, isa.LoadDRAM: 0.02, isa.Store: 0.14,
			isa.IntALU: 0.08, isa.Branch: 0.04,
		},
		Stream:           stream(2048, 0.6, 0.2, 0.2, 512, 0.3, 4096),
		Mem:              mem(4, 0.40, 300*time.Millisecond, 0.70),
		ResonantCurrentA: 0.16,
		CacheStress:      true,
		DRAMBandwidthGBs: 20,
		Duration:         50 * time.Second,
	},
	{
		Name: "kmeans", Suite: Rodinia,
		Mix: isa.Mix{
			isa.FPALU: 0.24, isa.LoadL1: 0.30, isa.LoadL2: 0.06,
			isa.LoadDRAM: 0.05, isa.Store: 0.12, isa.IntALU: 0.16, isa.Branch: 0.07,
		},
		Stream:           stream(6144, 0.8, 0.1, 0.1, 1024, 0.1, 2048),
		Mem:              mem(6, 0.70, 80*time.Millisecond, 0.50),
		ResonantCurrentA: 0.12,
		CacheStress:      true,
		DRAMBandwidthGBs: 50,
		Duration:         40 * time.Second,
	},
	{
		Name: "nw", Suite: Rodinia,
		Mix: isa.Mix{
			isa.IntALU: 0.34, isa.Branch: 0.10, isa.LoadL1: 0.30,
			isa.LoadL2: 0.06, isa.LoadDRAM: 0.02, isa.Store: 0.18,
		},
		Stream:           stream(8192, 0.3, 0.5, 0.2, 2048, 0.05, 1024),
		Mem:              mem(8, 0.10, 800*time.Millisecond, 0.60),
		ResonantCurrentA: 0.10,
		CacheStress:      true,
		DRAMBandwidthGBs: 5,
		Duration:         55 * time.Second,
	},
	{
		Name: "srad", Suite: Rodinia,
		Mix: isa.Mix{
			isa.FPALU: 0.32, isa.FPSIMD: 0.08, isa.LoadL1: 0.26,
			isa.LoadL2: 0.05, isa.LoadDRAM: 0.02, isa.Store: 0.14,
			isa.IntALU: 0.09, isa.Branch: 0.04,
		},
		Stream:           stream(5120, 0.7, 0.2, 0.1, 768, 0.2, 2048),
		Mem:              mem(5, 0.45, 250*time.Millisecond, 0.60),
		ResonantCurrentA: 0.14,
		CacheStress:      true,
		DRAMBandwidthGBs: 14,
		Duration:         45 * time.Second,
	},
}

// stencilProfile is the 3D stencil kernel of the access-pattern scheduling
// case study (ref [12], Section IV.C).
var stencilProfile = Profile{
	Name: "stencil3d", Suite: Synthetic,
	Mix: isa.Mix{
		isa.FPALU: 0.30, isa.FPSIMD: 0.10, isa.LoadL1: 0.30,
		isa.LoadL2: 0.05, isa.LoadDRAM: 0.02, isa.Store: 0.15,
		isa.IntALU: 0.05, isa.Branch: 0.03,
	},
	Stream:           stream(4096, 0.8, 0.15, 0.05, 4096, 0, 0),
	Mem:              mem(4, 0.9, 500*time.Millisecond, 0.85),
	ResonantCurrentA: 0.15,
	CacheStress:      true,
	DRAMBandwidthGBs: 22,
	Duration:         40 * time.Second,
}

// jammerProfile is the end-to-end SDR jammer-detector application of
// Fig. 9 (4 parallel instances saturating CPU; modest DRAM bandwidth, so
// refresh relaxation saves a third of DRAM power).
var jammerProfile = Profile{
	Name: "jammer-detector", Suite: Application,
	Mix: isa.Mix{
		isa.FPALU: 0.28, isa.FPSIMD: 0.18, isa.LoadL1: 0.26,
		isa.LoadL2: 0.03, isa.Store: 0.12, isa.IntALU: 0.09, isa.Branch: 0.04,
	},
	Stream:           stream(512, 0.7, 0.2, 0.1, 256, 0.5, 4096),
	Mem:              mem(0.5, 0.85, 40*time.Millisecond, 0.9),
	ResonantCurrentA: 0.18,
	CacheStress:      true,
	DRAMBandwidthGBs: 0.8,
	Duration:         time.Hour, // continuously running service
}

func cloneProfiles(src []Profile) []Profile {
	out := make([]Profile, len(src))
	copy(out, src)
	return out
}

// SPEC2006 returns the ten SPEC CPU2006 profiles of Fig. 4.
func SPEC2006() []Profile { return cloneProfiles(specProfiles) }

// NASSuite returns the NAS benchmark profiles of Fig. 6.
func NASSuite() []Profile { return cloneProfiles(nasProfiles) }

// RodiniaSuite returns the Rodinia profiles of Fig. 8.
func RodiniaSuite() []Profile { return cloneProfiles(rodiniaProfiles) }

// Stencil returns the stencil kernel profile.
func Stencil() Profile { return stencilProfile }

// Jammer returns the jammer-detector application profile.
func Jammer() Profile { return jammerProfile }

// Fig5Mix returns the eight-benchmark multi-programmed workload of Fig. 5:
// bwaves, cactusADM, dealII, gromacs, leslie3d, mcf, milc, namd.
func Fig5Mix() []Profile {
	names := []string{"bwaves", "cactusADM", "dealII", "gromacs", "leslie3d", "mcf", "milc", "namd"}
	out := make([]Profile, 0, len(names))
	for _, n := range names {
		p, err := ByName(n)
		if err != nil {
			// The mix names are package constants; a failure here is a
			// programming error caught by tests.
			panic(err)
		}
		out = append(out, p)
	}
	return out
}

// All returns every defined profile.
func All() []Profile {
	out := make([]Profile, 0, len(specProfiles)+len(nasProfiles)+len(rodiniaProfiles)+2)
	out = append(out, specProfiles...)
	out = append(out, nasProfiles...)
	out = append(out, rodiniaProfiles...)
	out = append(out, stencilProfile, jammerProfile)
	return out
}

// ByName looks a profile up by benchmark name.
func ByName(name string) (Profile, error) {
	for _, p := range All() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("workloads: unknown benchmark %q", name)
}

// Names returns every profile name, sorted.
func Names() []string {
	all := All()
	names := make([]string, len(all))
	for i, p := range all {
		names[i] = p.Name
	}
	sort.Strings(names)
	return names
}
