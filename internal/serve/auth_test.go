package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestValidTenant(t *testing.T) {
	for _, ok := range []string{"a", "team-a", "Team_B.2", strings.Repeat("x", 64)} {
		if !ValidTenant(ok) {
			t.Errorf("ValidTenant(%q) = false, want true", ok)
		}
	}
	for _, bad := range []string{"", strings.Repeat("x", 65), "has space", "new\nline", `quo"te`, "a{b}", "a=b"} {
		if ValidTenant(bad) {
			t.Errorf("ValidTenant(%q) = true, want false", bad)
		}
	}
}

func TestKeyringLookup(t *testing.T) {
	kr, err := NewKeyring([]Key{
		{Secret: "alpha-key", Tenant: "alpha"},
		{Secret: "alpha-old", Tenant: "alpha", Disabled: true},
		{Secret: "bravo-key", Tenant: "bravo", RateLimit: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if k, res := kr.lookup("alpha-key"); res != authOK || k.Tenant != "alpha" {
		t.Errorf("lookup(alpha-key) = %+v, %v", k, res)
	}
	if k, res := kr.lookup("bravo-key"); res != authOK || k.Tenant != "bravo" || k.RateLimit != 2 {
		t.Errorf("lookup(bravo-key) = %+v, %v", k, res)
	}
	if _, res := kr.lookup("alpha-old"); res != authDisabled {
		t.Errorf("lookup(disabled) = %v, want authDisabled", res)
	}
	if _, res := kr.lookup("nope"); res != authUnknown {
		t.Errorf("lookup(unknown) = %v, want authUnknown", res)
	}
	if got := kr.Tenants(); len(got) != 2 || got[0] != "alpha" || got[1] != "bravo" {
		t.Errorf("Tenants() = %v", got)
	}
}

func TestNewKeyringRejects(t *testing.T) {
	cases := map[string][]Key{
		"empty set":      {},
		"empty secret":   {{Secret: "", Tenant: "a"}},
		"bad tenant":     {{Secret: "k", Tenant: "has space"}},
		"missing tenant": {{Secret: "k"}},
		"duplicate":      {{Secret: "k", Tenant: "a"}, {Secret: "k", Tenant: "b"}},
	}
	for name, keys := range cases {
		if _, err := NewKeyring(keys); err == nil {
			t.Errorf("NewKeyring(%s) accepted", name)
		}
	}
}

func TestParseKeyfile(t *testing.T) {
	keys, err := ParseKeyfile(strings.NewReader(`[
		{"key": "s1", "tenant": "alpha"},
		{"key": "s2", "tenant": "bravo", "disabled": true, "rate_limit": 3, "rate_burst": 5, "max_streams": 2}
	]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0].Tenant != "alpha" || !keys[1].Disabled ||
		keys[1].RateLimit != 3 || keys[1].RateBurst != 5 || keys[1].MaxStreams != 2 {
		t.Errorf("parsed keys = %+v", keys)
	}
	if _, err := ParseKeyfile(strings.NewReader(`[{"key":"s","tenant":"a"}] trailing`)); err == nil {
		t.Error("trailing data accepted")
	}
	if _, err := ParseKeyfile(strings.NewReader(`{"key":"s"}`)); err == nil {
		t.Error("non-array keyfile accepted")
	}
}

func TestParseInlineKeys(t *testing.T) {
	keys, err := ParseInlineKeys("k1=alpha, k2=bravo")
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0].Secret != "k1" || keys[1].Tenant != "bravo" {
		t.Errorf("parsed = %+v", keys)
	}
	for _, bad := range []string{"", ",,", "noequals", "=tenant", "key="} {
		if _, err := ParseInlineKeys(bad); err == nil {
			t.Errorf("ParseInlineKeys(%q) accepted", bad)
		}
	}
}

// authedSubmit POSTs a spec with the given headers and returns the
// response (body drained into the returned buffer, connection closed).
func authedSubmit(t *testing.T, ts *httptest.Server, spec Spec, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	body, _ := json.Marshal(spec)
	return rawPost(t, ts, body, hdr)
}

func rawPost(t *testing.T, ts *httptest.Server, body []byte, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/campaigns", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestAuthRejectionMatrix pins the auth half of the front door: missing
// key 401 (with WWW-Authenticate), unknown key 403, disabled key 403,
// valid keys accepted via both Authorization: Bearer and X-API-Key, the
// ops surface never gated — and every rejection visible in the
// serve_auth_failures_total metric family, which must lint.
func TestAuthRejectionMatrix(t *testing.T) {
	_, ts := newTestServer(t, Options{AuthKeys: []Key{
		{Secret: "good-key", Tenant: "alpha"},
		{Secret: "dead-key", Tenant: "alpha", Disabled: true},
	}})
	before := scrapeMetrics(t, ts.URL)
	// A LabeledCounter series may be absent from the "before" scrape (the
	// family only renders once a series mints), so missing counts as zero.
	sampleOrZero := func(body, sample string) float64 {
		for _, line := range strings.Split(body, "\n") {
			if strings.HasPrefix(line, sample+" ") {
				return metricValue(t, body, sample)
			}
		}
		return 0
	}
	delta := func(body, sample string) float64 {
		return sampleOrZero(body, sample) - sampleOrZero(before, sample)
	}

	// Missing key: 401 plus the challenge header.
	resp, _ := authedSubmit(t, ts, testSpec(1), nil)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("anonymous submit status %d, want 401", resp.StatusCode)
	}
	if got := resp.Header.Get("WWW-Authenticate"); !strings.Contains(got, "Bearer") {
		t.Errorf("WWW-Authenticate = %q", got)
	}
	// Unknown and disabled keys: 403.
	if resp, _ := authedSubmit(t, ts, testSpec(1), map[string]string{"Authorization": "Bearer wrong"}); resp.StatusCode != http.StatusForbidden {
		t.Errorf("unknown-key status %d, want 403", resp.StatusCode)
	}
	if resp, _ := authedSubmit(t, ts, testSpec(1), map[string]string{"X-API-Key": "dead-key"}); resp.StatusCode != http.StatusForbidden {
		t.Errorf("disabled-key status %d, want 403", resp.StatusCode)
	}
	// A non-Bearer Authorization scheme counts as no key at all.
	if resp, _ := authedSubmit(t, ts, testSpec(1), map[string]string{"Authorization": "Basic Zm9vOmJhcg=="}); resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("basic-auth status %d, want 401", resp.StatusCode)
	}

	// Valid key via both header forms (the scheme is case-insensitive).
	for _, hdr := range []map[string]string{
		{"Authorization": "Bearer good-key"},
		{"Authorization": "bearer good-key"},
		{"X-API-Key": "good-key"},
	} {
		resp, body := authedSubmit(t, ts, testSpec(1), hdr)
		if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
			t.Fatalf("authed submit with %v: status %d: %s", hdr, resp.StatusCode, body)
		}
	}

	// The ops surface answers without a key.
	for _, path := range []string{"/healthz", "/metrics", "/stats", "/version"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Errorf("%s status %d with auth enabled, want 200", path, r.StatusCode)
		}
	}
	// But the campaign read API is gated too.
	r, err := http.Get(ts.URL + "/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusUnauthorized {
		t.Errorf("GET /campaigns status %d with auth enabled, want 401", r.StatusCode)
	}

	after := scrapeMetrics(t, ts.URL)
	if err := obs.Lint(strings.NewReader(after)); err != nil {
		t.Errorf("exposition lint: %v", err)
	}
	// missing: the anonymous submit, the Basic attempt, the GET list.
	if got := delta(after, `serve_auth_failures_total{reason="missing"}`); got != 3 {
		t.Errorf("missing failures delta = %v, want 3", got)
	}
	if got := delta(after, `serve_auth_failures_total{reason="unknown"}`); got != 1 {
		t.Errorf("unknown failures delta = %v, want 1", got)
	}
	if got := delta(after, `serve_auth_failures_total{reason="disabled"}`); got != 1 {
		t.Errorf("disabled failures delta = %v, want 1", got)
	}
	if got := delta(after, `serve_tenant_submissions_total{tenant="alpha"}`); got != 3 {
		t.Errorf("tenant submissions delta = %v, want 3", got)
	}
}

// TestTenantPropagation pins the identity flow: an authenticated
// submission's tenant appears in the submit-side view, the campaign list,
// the structured logs (alongside the trace ID), and /stats counts the
// failures — while the anonymous fields stay omitted from views when auth
// is off (byte-identity with the pre-auth daemon).
func TestTenantPropagation(t *testing.T) {
	logs := &syncBuffer{}
	_, ts := newTestServer(t, Options{
		AuthKeys: []Key{{Secret: "k", Tenant: "team-a"}},
		Logger:   slog.New(slog.NewJSONHandler(logs, nil)),
	})
	resp, body := authedSubmit(t, ts, testSpec(1), map[string]string{"Authorization": "Bearer k"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", resp.StatusCode, body)
	}
	var sr submitResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}

	// View carries the tenant.
	req, _ := http.NewRequest("GET", ts.URL+"/campaigns/"+sr.ID, nil)
	req.Header.Set("X-API-Key", "k")
	vr, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var v View
	if err := json.NewDecoder(vr.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	vr.Body.Close()
	if v.Tenant != "team-a" {
		t.Errorf("View.Tenant = %q, want team-a", v.Tenant)
	}

	// An auth failure logs tenant-independent context; the accepted
	// submission's log line carries tenant AND trace ID together.
	authedSubmit(t, ts, testSpec(1), nil) // one 401 for the failure counter
	logged := logs.String()
	if !strings.Contains(logged, `"tenant":"team-a"`) {
		t.Errorf("logs missing tenant attribute:\n%s", logged)
	}
	if !strings.Contains(logged, fmt.Sprintf(`"trace_id":%q`, sr.TraceID)) {
		t.Errorf("logs missing trace %q:\n%s", sr.TraceID, logged)
	}
	if !strings.Contains(logged, `"msg":"auth failed"`) {
		t.Errorf("logs missing auth-failed line:\n%s", logged)
	}

	// /stats reports the auth state and failure count.
	st, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats statsResponse
	if err := json.NewDecoder(st.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	st.Body.Close()
	if !stats.AuthEnabled {
		t.Error("stats.AuthEnabled = false")
	}
	if stats.AuthFailures != 1 {
		t.Errorf("stats.AuthFailures = %d, want 1", stats.AuthFailures)
	}
}

// TestAuthDisabledUnchanged pins anonymous mode: with no keyring, views
// carry no tenant field at all and /stats omits the auth counters — the
// wire surface is byte-compatible with a pre-auth daemon.
func TestAuthDisabledUnchanged(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	sr := submit(t, ts, testSpec(1), http.StatusAccepted)
	r, err := http.Get(ts.URL + "/campaigns/" + sr.ID)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if strings.Contains(string(raw), `"tenant"`) {
		t.Errorf("anonymous view leaks a tenant field: %s", raw)
	}
	st, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	rawStats, _ := io.ReadAll(st.Body)
	st.Body.Close()
	for _, field := range []string{`"auth_enabled"`, `"auth_failures"`, `"rate_limited"`} {
		if strings.Contains(string(rawStats), field) {
			t.Errorf("anonymous /stats leaks %s: %s", field, rawStats)
		}
	}
}

// TestAuthReload pins the SetKeys swap semantics campaignd's SIGHUP path
// relies on: a new ring takes effect immediately, an invalid ring is
// rejected and the old one keeps working, and nil disables auth.
func TestAuthReload(t *testing.T) {
	s, ts := newTestServer(t, Options{AuthKeys: []Key{{Secret: "old", Tenant: "a"}}})
	if resp, _ := authedSubmit(t, ts, testSpec(1), map[string]string{"X-API-Key": "old"}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("old key rejected before rotation: %d", resp.StatusCode)
	}
	if err := s.SetKeys([]Key{{Secret: "new", Tenant: "a"}}); err != nil {
		t.Fatal(err)
	}
	if resp, _ := authedSubmit(t, ts, testSpec(1), map[string]string{"X-API-Key": "old"}); resp.StatusCode != http.StatusForbidden {
		t.Errorf("rotated-out key status %d, want 403", resp.StatusCode)
	}
	sp := testSpec(1)
	sp.Seed = 1234 // fresh fingerprint so the reply is 202, not a cache 200
	if resp, _ := authedSubmit(t, ts, sp, map[string]string{"X-API-Key": "new"}); resp.StatusCode != http.StatusAccepted {
		t.Errorf("new key status %d, want 202", resp.StatusCode)
	}
	// A broken reload must not install: the current ring keeps working.
	if err := s.SetKeys([]Key{{Secret: "", Tenant: "a"}}); err == nil {
		t.Error("invalid keyring accepted")
	}
	if resp, _ := authedSubmit(t, ts, testSpec(1), map[string]string{"X-API-Key": "new"}); resp.StatusCode == http.StatusForbidden || resp.StatusCode == http.StatusUnauthorized {
		t.Errorf("working key lost after failed reload: %d", resp.StatusCode)
	}
	// nil = back to anonymous.
	if err := s.SetKeys(nil); err != nil {
		t.Fatal(err)
	}
	if !s.AuthEnabled() {
		if resp, _ := authedSubmit(t, ts, testSpec(1), nil); resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			t.Errorf("anonymous submit after disable: %d", resp.StatusCode)
		}
	} else {
		t.Error("AuthEnabled() still true after SetKeys(nil)")
	}
}

// TestSubmitBodyLimits pins the HTTP-edge bugfixes on POST /campaigns: a
// body over the 1 MiB cap gets 413 (not a generic 400), trailing garbage
// after the spec object gets 400, and trailing whitespace stays legal.
func TestSubmitBodyLimits(t *testing.T) {
	_, ts := newTestServer(t, Options{})

	// Oversized: a valid spec padded past the cap with a huge field.
	huge := []byte(`{"seed":7,"benches":["mcf","` + strings.Repeat("x", maxSubmitBytes) + `"]}`)
	resp, _ := rawPost(t, ts, huge, nil)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized body status %d, want 413", resp.StatusCode)
	}

	body, _ := json.Marshal(testSpec(1))
	resp, msg := rawPost(t, ts, append(append([]byte{}, body...), []byte(` {"more":1}`)...), nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("trailing-garbage status %d, want 400: %s", resp.StatusCode, msg)
	}
	resp, msg = rawPost(t, ts, append(append([]byte{}, body...), " \n\t"...), nil)
	if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
		t.Errorf("trailing-whitespace status %d, want 2xx: %s", resp.StatusCode, msg)
	}
}

// TestRetryAfterOn503 pins the backpressure header fix: queue-full and
// draining 503s tell clients when to come back.
func TestRetryAfterOn503(t *testing.T) {
	s, ts := newTestServer(t, Options{QueueDepth: 1, Concurrency: 1})
	gate := make(chan struct{})
	s.gate = gate
	defer close(gate)

	mk := func(seed uint64) Spec {
		sp := testSpec(1)
		sp.Seed = seed
		return sp
	}
	running := submit(t, ts, mk(200), http.StatusAccepted)
	waitForStatus(t, s, running.ID, StatusRunning)
	submit(t, ts, mk(201), http.StatusAccepted) // fills the queue

	resp, _ := authedSubmit(t, ts, mk(202), nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-bound status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "1" {
		t.Errorf("queue-full Retry-After = %q, want 1", got)
	}
}

// waitForStatus polls until the campaign reaches the wanted status.
func waitForStatus(t *testing.T, s *Server, id string, want Status) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.lookup(id).Status() != want {
		if time.Now().After(deadline) {
			t.Fatalf("campaign %s never reached %s", id, want)
		}
		time.Sleep(time.Millisecond)
	}
}
