package serve

import (
	"net/http"
	"runtime"
	"runtime/debug"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
)

// Service-layer metrics (process-wide; GET /metrics renders them in
// Prometheus text format). The per-server /stats JSON reports the same
// story scoped to one Server instance; these are the fleet-scrapeable
// aggregates. Counters sit off the record hot path: submissions, queue
// transitions and stream lifecycles are per-campaign events, and the
// per-frame stream byte counter is one atomic add per write.
var (
	mSubmissions = obs.NewCounterVec("campaignd_submissions_total",
		"Campaign submissions by outcome: accepted (a new grid run was scheduled), cached (answered from memory or disk), rejected (invalid spec, full queue, or draining).",
		"result", "accepted", "cached", "rejected")
	mCampaignsRun = obs.NewCounter("campaignd_campaigns_run_total",
		"Campaigns the scheduler handed to the engine (cache and replay hits excluded).")
	mReplayHits = obs.NewCounter("campaignd_replay_hits_total",
		"Submissions answered by replaying a durable-store segment instead of re-running.")
	mEvictions = obs.NewCounter("campaignd_evictions_total",
		"Finished campaigns evicted from the registry by the cache bound.")
	mQueueLen = obs.NewGauge("campaignd_queue_length",
		"Campaigns admitted but not yet executing.")
	mQueueWait = obs.NewHistogram("campaignd_queue_wait_seconds",
		"Time a campaign spent queued between admission and execution.", nil)
	mSubscribers = obs.NewGauge("campaignd_active_subscribers",
		"Stream subscribers currently attached (NDJSON and SSE).")
	mStreamBytes = obs.NewCounter("campaignd_stream_bytes_total",
		"Bytes written to stream subscribers, shared pre-rendered frames included.")
	mDroppedRecords = obs.NewCounter("campaignd_dropped_records_total",
		"Records discarded by Drop-policy subscriber sinks that fell behind the broadcast (see core.ChanSink).")
	mDraining = obs.NewGauge("campaignd_draining",
		"1 while the server is draining for shutdown (new submissions get 503).")
	mStoreErrors = obs.NewCounter("campaignd_store_errors_total",
		"Persistence failures (the affected campaigns themselves completed).")
	mStoreDegraded = obs.NewGauge("serve_store_degraded",
		"1 while the durable store is rejecting writes and campaigns run memory-only; clears on the next successful commit.")
	mGridsResumed = obs.NewCounter("campaignd_grids_resumed_total",
		"Interrupted campaigns resumed from a crash checkpoint instead of restarting from scratch.")
	mRunsSaved = obs.NewCounter("campaignd_runs_saved_total",
		"Characterization runs restored from crash checkpoints — work a restart did not repeat.")
	mRequeued = obs.NewCounter("campaignd_requeued_total",
		"Campaigns re-admitted at boot from the intent journal (accepted before a crash, never finished).")

	// Front-door metrics (auth + rate limiting; see auth.go / limit.go).
	// The auth-failure reasons are a closed set, so a frozen CounterVec
	// fits; the tenant families are dynamic LabeledCounters because tenants
	// arrive at runtime with the keyfile and an unminted family is simply
	// omitted from the exposition.
	mAuthFailures = obs.NewCounterVec("serve_auth_failures_total",
		"Rejected campaign-API requests by reason: missing (no key presented, 401), unknown (key not in the ring, 403), disabled (key present but disabled, 403).",
		"reason", "missing", "unknown", "disabled")
	mRateLimited = obs.NewLabeledCounter("serve_rate_limited_total",
		"Requests rejected with 429 per tenant (token bucket empty or stream-subscriber cap reached); anonymous traffic appears as tenant=\"anonymous\".",
		"tenant")
	mTenantSubmissions = obs.NewLabeledCounter("serve_tenant_submissions_total",
		"Campaign submissions accepted or served from cache over HTTP, per tenant.",
		"tenant")
)

// handleMetrics serves the process-wide obs registry: every layer's
// counters (serve, campaign engine, store, wire) in one scrape.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", obs.ContentType)
	if err := obs.Default().WritePrometheus(w); err != nil {
		// Headers are gone; all we can do is drop the connection.
		s.logger.Error("metrics exposition failed", "err", err)
	}
}

// buildInfo is the version surface shared by GET /version and /stats.
type buildInfo struct {
	// Module and Version identify the main module ("(devel)" for a
	// non-module build).
	Module  string `json:"module"`
	Version string `json:"version"`
	// Revision is the VCS commit when the binary was built from one.
	Revision  string `json:"revision,omitempty"`
	GoVersion string `json:"go_version"`
}

// readBuildInfo snapshots the binary's identity once at startup.
func readBuildInfo() buildInfo {
	info := buildInfo{GoVersion: runtime.Version(), Module: "unknown", Version: "(devel)"}
	if bi, ok := debug.ReadBuildInfo(); ok {
		info.Module = bi.Main.Path
		if bi.Main.Version != "" {
			info.Version = bi.Main.Version
		}
		for _, kv := range bi.Settings {
			if kv.Key == "vcs.revision" {
				info.Revision = kv.Value
			}
		}
	}
	return info
}

// versionResponse is the GET /version reply.
type versionResponse struct {
	buildInfo
	UptimeS float64 `json:"uptime_s"`
}

func (s *Server) handleVersion(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, r, http.StatusOK, versionResponse{
		buildInfo: s.build,
		UptimeS:   time.Since(s.start).Seconds(),
	})
}

// SubscribeChan subscribes a Drop-policy ChanSink of the given buffer
// depth to the server's broadcast spool, wired into the slow-subscriber
// drop accounting: records the consumer fails to keep up with are
// discarded (never stalling a campaign) and counted in /stats
// ("dropped_records") and the campaignd_dropped_records_total metric.
// The returned cancel function unsubscribes and closes the sink.
func (s *Server) SubscribeChan(buffer int) (*core.ChanSink, func()) {
	sink := core.NewChanSink(buffer, core.Drop).OnDrop(func(uint64) {
		s.subDrops.Add(1)
		mDroppedRecords.Inc()
	})
	id := s.spool.Subscribe(sink)
	return sink, func() {
		s.spool.Unsubscribe(id)
		sink.Close()
	}
}

// countWrite tracks stream handler writes in the fan-out byte counter.
func countWrite(n int, err error) error {
	if n > 0 {
		mStreamBytes.Add(uint64(n))
	}
	return err
}
