package serve

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/wire"
	"repro/internal/xgene"
)

// fleetHarness is one federated daemon on a real listener.
type fleetHarness struct {
	srv  *Server
	base string
}

// startFleet boots n federated servers that all know each other; mod may
// adjust each server's options (store dirs, auth, limits) before New.
func startFleet(t *testing.T, n int, secret string, mod func(i int, o *Options)) []*fleetHarness {
	t.Helper()
	lns := make([]net.Listener, n)
	peers := make([]fleet.Peer, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		id := ln.Addr().String()
		peers[i] = fleet.Peer{ID: id, BaseURL: "http://" + id}
	}
	out := make([]*fleetHarness, n)
	for i := range lns {
		opts := Options{Fleet: &fleet.Options{
			Self:            peers[i],
			Peers:           peers,
			Secret:          secret,
			Backoff:         time.Millisecond,
			AttemptsPerPeer: 1,
			Timeout:         5 * time.Second,
		}}
		if mod != nil {
			mod(i, &opts)
		}
		s, err := New(opts)
		if err != nil {
			t.Fatal(err)
		}
		hs := &http.Server{Handler: s}
		go hs.Serve(lns[i])
		t.Cleanup(func() {
			hs.Close()
			s.Close()
		})
		out[i] = &fleetHarness{srv: s, base: "http://" + peers[i].ID}
	}
	return out
}

func (h *fleetHarness) gridsRun() int {
	h.srv.mu.Lock()
	defer h.srv.mu.Unlock()
	return h.srv.gridsRun
}

// streamBytes tails a campaign over HTTP to EOF.
func fleetStreamBytes(t *testing.T, base, id string) []byte {
	t.Helper()
	resp, err := http.Get(base + "/campaigns/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestFleetReplicatesAcrossPeers(t *testing.T) {
	// The acceptance path: characterize on A, resubmit on B — B must
	// answer from A's committed segment with zero grids run and a
	// byte-identical stream, and persist the replica in its own store.
	hs := startFleet(t, 3, "hush", func(i int, o *Options) {
		o.StoreDir = t.TempDir()
	})
	a, b, c := hs[0], hs[1], hs[2]
	spec := testSpec(2)
	want := batchJSONL(t, spec)

	ca, cached, err := a.srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first submission must run")
	}
	waitForStatus(t, a.srv, ca.id, StatusDone)

	cb, cached, err := b.srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !cached {
		t.Fatal("peer B must answer from replication, not schedule a run")
	}
	if got := b.gridsRun(); got != 0 {
		t.Fatalf("peer B ran %d grids, want 0", got)
	}
	if got := fleetStreamBytes(t, b.base, cb.id); !bytes.Equal(got, want) {
		t.Fatal("replicated stream is not byte-identical to the batch report")
	}
	if n := b.srv.fleetReplications.Load(); n != 1 {
		t.Fatalf("peer B replications = %d, want 1", n)
	}
	if _, ok := b.srv.store.Get(ca.fingerprint); !ok {
		t.Fatal("replica was not persisted in peer B's store")
	}
	if n := a.srv.fleetServed.Load(); n != 1 {
		t.Fatalf("peer A served = %d, want 1", n)
	}

	// C can now get it from A or B; either way, no local run.
	cc, cached, err := c.srv.Submit(spec)
	if err != nil || !cached {
		t.Fatalf("peer C: cached=%v err=%v", cached, err)
	}
	if got := c.gridsRun(); got != 0 {
		t.Fatalf("peer C ran %d grids, want 0", got)
	}
	if got := fleetStreamBytes(t, c.base, cc.id); !bytes.Equal(got, want) {
		t.Fatal("peer C stream is not byte-identical")
	}

	// A second submission on B is an ordinary cache hit — the fleet is
	// consulted once per miss, never per request.
	before := b.srv.fleet.Stats()
	if _, cached, err = b.srv.Submit(spec); err != nil || !cached {
		t.Fatalf("resubmit on B: cached=%v err=%v", cached, err)
	}
	after := b.srv.fleet.Stats()
	for i := range after.Peers {
		if after.Peers[i].Fetches != before.Peers[i].Fetches {
			t.Fatal("a cache hit must not touch the fleet")
		}
	}
}

func TestFleetRingInfoAgreesAcrossPeers(t *testing.T) {
	hs := startFleet(t, 3, "", nil)
	var versions []string
	for _, h := range hs {
		resp, err := http.Get(h.base + "/fleet/ring")
		if err != nil {
			t.Fatal(err)
		}
		var info fleet.RingInfo
		if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if len(info.Peers) != 3 {
			t.Fatalf("ring reports %d peers", len(info.Peers))
		}
		versions = append(versions, info.Version)
	}
	if versions[0] != versions[1] || versions[1] != versions[2] {
		t.Fatalf("ring versions disagree: %v", versions)
	}
}

func TestFleetSecretGatesPeerProtocol(t *testing.T) {
	hs := startFleet(t, 2, "hush", nil)
	for _, tc := range []struct {
		secret string
		want   int
	}{
		{"", http.StatusForbidden},
		{"wrong", http.StatusForbidden},
		{"hush", http.StatusNotFound}, // authenticated; nothing committed yet
	} {
		req, _ := http.NewRequest("GET", hs[0].base+"/fleet/segments/00000000000000aa", nil)
		if tc.secret != "" {
			req.Header.Set(fleet.HeaderSecret, tc.secret)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("secret %q: status = %d, want %d", tc.secret, resp.StatusCode, tc.want)
		}
	}
	if mFleetAuthFailures.Value() == 0 {
		t.Fatal("rejections must be counted")
	}
}

func TestFleetBypassesTenantLimits(t *testing.T) {
	// The satellite contract: a noisy tenant that has exhausted its token
	// bucket must not starve replication — fleet fetches ride outside the
	// tenant keyring and rate limiter.
	hs := startFleet(t, 2, "hush", func(i int, o *Options) {
		o.AuthKeys = []Key{{Secret: "k-noisy", Tenant: "noisy"}}
		o.RateLimit = 0.0001 // one token, then a very long wait
		o.RateBurst = 1
	})
	a := hs[0]
	spec := testSpec(1)
	ca, _, err := a.srv.Submit(spec) // library path: admitted regardless of HTTP limits
	if err != nil {
		t.Fatal(err)
	}
	waitForStatus(t, a.srv, ca.id, StatusDone)

	// Burn the tenant's only token, then confirm it is throttled.
	do := func() int {
		body, _ := json.Marshal(spec)
		req, _ := http.NewRequest("POST", a.base+"/campaigns", bytes.NewReader(body))
		req.Header.Set("X-API-Key", "k-noisy")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.StatusCode
	}
	if got := do(); got != http.StatusOK {
		t.Fatalf("first tenant request: %d", got)
	}
	if got := do(); got != http.StatusTooManyRequests {
		t.Fatalf("second tenant request: %d, want 429", got)
	}

	// The tenant is starved; the fleet must not be.
	for i := 0; i < 5; i++ {
		req, _ := http.NewRequest("GET", a.base+"/fleet/segments/"+ca.fingerprint, nil)
		req.Header.Set(fleet.HeaderSecret, "hush")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fleet fetch %d: status = %d while tenant throttled", i, resp.StatusCode)
		}
	}
	if got := do(); got != http.StatusTooManyRequests {
		t.Fatalf("fleet traffic refilled the tenant bucket? status = %d", got)
	}
}

// fakePeer runs a raw HTTP handler on a real listener and returns it as a
// fleet member, for injecting protocol-level misbehavior.
func fakePeer(t *testing.T, handler http.HandlerFunc) fleet.Peer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hs := &http.Server{Handler: handler}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })
	id := ln.Addr().String()
	return fleet.Peer{ID: id, BaseURL: "http://" + id}
}

// newFederatedServer builds one Server whose only remote peer is the fake.
func newFederatedServer(t *testing.T, peer fleet.Peer) *Server {
	t.Helper()
	self := fleet.Peer{ID: "self.test:1", BaseURL: "http://self.test:1"}
	s, err := New(Options{Fleet: &fleet.Options{
		Self:            self,
		Peers:           []fleet.Peer{self, peer},
		Backoff:         time.Millisecond,
		AttemptsPerPeer: 1,
		Timeout:         5 * time.Second,
	}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// runsLocally submits the spec and asserts the full degradation contract:
// admitted, not cached, exactly one grid run, stream byte-identical.
func runsLocally(t *testing.T, s *Server, spec Spec) {
	t.Helper()
	c, cached, err := s.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("degraded submission must schedule a local run")
	}
	waitForStatus(t, s, c.id, StatusDone)
	s.mu.Lock()
	runs := s.gridsRun
	s.mu.Unlock()
	if runs != 1 {
		t.Fatalf("grids run = %d, want 1", runs)
	}
}

// binarySegment renders n throwaway records in the wire's binary framing.
func binarySegment(t *testing.T, n int) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.Write(wire.Header())
	var scratch []byte
	for i := 0; i < n; i++ {
		rec := core.RunRecord{Benchmark: fmt.Sprintf("b%d", i), Outcome: xgene.OutcomeOK}
		var err error
		scratch, err = wire.AppendBinaryRecord(scratch[:0], rec)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(scratch)
	}
	return buf.Bytes()
}

func TestFleetTruncatedSegmentRunsLocally(t *testing.T) {
	// The owner advertises 8 records but streams 3: the fetch must reject
	// the partial characterization and the submission must re-run whole.
	body := binarySegment(t, 3)
	peer := fakePeer(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(fleet.HeaderRing, r.Header.Get(fleet.HeaderRing))
		w.Header().Set(fleet.HeaderMeta, base64.StdEncoding.EncodeToString([]byte(`{"spec":{}}`)))
		w.Header().Set(fleet.HeaderRecords, "8")
		w.Write(body)
	})
	s := newFederatedServer(t, peer)
	runsLocally(t, s, testSpec(1))
	st := s.fleet.Stats()
	if len(st.Peers) != 1 || st.Peers[0].Failures == 0 {
		t.Fatalf("truncation must count as a peer failure: %+v", st.Peers)
	}
}

func TestFleetRingMismatchRunsLocally(t *testing.T) {
	peer := fakePeer(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(fleet.HeaderRing, "0000000000000bad")
		w.WriteHeader(http.StatusConflict)
	})
	s := newFederatedServer(t, peer)
	runsLocally(t, s, testSpec(1))
	if st := s.fleet.Stats(); st.Mismatches == 0 {
		t.Fatal("ring mismatch must be counted")
	}
	// A config fault is not a peer fault: no breaker, no failure count.
	if st := s.fleet.Stats(); !st.Peers[0].Healthy {
		t.Fatal("mismatching peer must not be ejected")
	}
}

func TestFleetImpersonatingMetaRunsLocally(t *testing.T) {
	// A peer answers with a VALID segment for some other spec. adoptRemote
	// must refuse it — meta that does not fingerprint back to the asked-for
	// key never impersonates the requested characterization.
	other := testSpec(1)
	other.Seed = 999 // a different measurement, hence a different fingerprint
	otherMeta, err := json.Marshal(metaOf(other.withDefaults(), 1,
		campaign.Stats{Runs: 2, Planned: 2}))
	if err != nil {
		t.Fatal(err)
	}
	body := binarySegment(t, 2)
	peer := fakePeer(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(fleet.HeaderRing, r.Header.Get(fleet.HeaderRing))
		w.Header().Set(fleet.HeaderMeta, base64.StdEncoding.EncodeToString(otherMeta))
		w.Header().Set(fleet.HeaderRecords, "2")
		w.Write(body)
	})
	s := newFederatedServer(t, peer)
	runsLocally(t, s, testSpec(1))
}

func TestFleetPeerDeathMidFetchRunsLocally(t *testing.T) {
	// The peer dies mid-body: headers committed, a fragment written, then
	// the connection is torn down. Run several submissions of the same
	// fingerprint concurrently so the single-flight path is exercised
	// under -race too.
	full := binarySegment(t, 6)
	peer := fakePeer(t, func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(fleet.HeaderRing, r.Header.Get(fleet.HeaderRing))
		w.Header().Set(fleet.HeaderMeta, base64.StdEncoding.EncodeToString([]byte(`{"spec":{}}`)))
		w.Header().Set(fleet.HeaderRecords, "6")
		w.Write(full[:len(full)/2])
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		panic(http.ErrAbortHandler) // net/http aborts the connection
	})
	s := newFederatedServer(t, peer)
	spec := testSpec(1)
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, _, err := s.Submit(spec)
			if err == nil {
				waitForStatus(t, s, c.id, StatusDone)
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	s.mu.Lock()
	runs := s.gridsRun
	s.mu.Unlock()
	if runs != 1 {
		t.Fatalf("grids run = %d, want exactly 1 (shared local run)", runs)
	}
	want := batchJSONL(t, spec)
	c := s.lookup("c000000")
	if c == nil {
		t.Fatal("campaign missing")
	}
	frames, _, _, ok := c.doneFrames()
	if !ok {
		t.Fatal("campaign not done")
	}
	var got bytes.Buffer
	for _, f := range frames {
		got.Write(f.Line)
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("local fallback stream is not byte-identical")
	}
}
