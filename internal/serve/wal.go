package serve

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// intentName is the submission intent journal, kept in the store
// directory. Its .tmp rewrite file deliberately lacks the "seg-" prefix,
// so the store's crash sweep never touches it.
const intentName = "INTENT.jsonl"

// intentOp is one line of the intent WAL: "begin" journals an accepted
// submission (spec, trace, tenant) before it can execute; "end" marks it
// terminal — done, failed, or rejected after the begin landed. A begin
// without an end after a crash is an interrupted campaign the next boot
// must requeue.
type intentOp struct {
	Op          string `json:"op"`
	Fingerprint string `json:"fp"`
	Spec        *Spec  `json:"spec,omitempty"`
	TraceID     string `json:"trace_id,omitempty"`
	Tenant      string `json:"tenant,omitempty"`
}

// intentWAL is the serve layer's write-ahead intent journal. Begins are
// fsync'd — an accepted submission must survive a crash, that is the
// entire point — ends are appended without fsync (losing one costs a
// requeue that immediately re-terminates, never a lost campaign). The
// journal is compacted to pure pending begins at open and in-process
// once end churn outgrows the pending set.
type intentWAL struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	ops     int
	pending map[string]intentOp
	order   []string
	closed  bool
}

// openIntentWAL replays (with prefix salvage, like the store manifest)
// and compacts the intent journal, returning the WAL and the pending
// begins in submission order.
func openIntentWAL(dir string) (*intentWAL, []intentOp, error) {
	w := &intentWAL{
		path:    filepath.Join(dir, intentName),
		pending: make(map[string]intentOp),
	}
	dirty := false
	data, err := os.ReadFile(w.path)
	switch {
	case errors.Is(err, os.ErrNotExist):
	case err != nil:
		return nil, nil, fmt.Errorf("serve: read intent wal: %w", err)
	default:
		for _, line := range strings.Split(string(data), "\n") {
			if strings.TrimSpace(line) == "" {
				continue
			}
			var op intentOp
			if uerr := json.Unmarshal([]byte(line), &op); uerr != nil {
				// Torn tail (or worse): trust the intact prefix only.
				dirty = true
				break
			}
			w.ops++
			switch op.Op {
			case "begin":
				if _, ok := w.pending[op.Fingerprint]; !ok {
					w.order = append(w.order, op.Fingerprint)
				}
				w.pending[op.Fingerprint] = op
			case "end":
				if _, ok := w.pending[op.Fingerprint]; ok {
					delete(w.pending, op.Fingerprint)
					for i, fp := range w.order {
						if fp == op.Fingerprint {
							w.order = append(w.order[:i], w.order[i+1:]...)
							break
						}
					}
				}
			}
		}
		if len(data) > 0 && data[len(data)-1] != '\n' {
			dirty = true
		}
	}
	if dirty || w.bloatedLocked() {
		if err := w.rewriteLocked(); err != nil {
			return nil, nil, err
		}
	}
	if w.f == nil {
		f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, fmt.Errorf("serve: open intent wal: %w", err)
		}
		w.f = f
	}
	out := make([]intentOp, 0, len(w.order))
	for _, fp := range w.order {
		out = append(out, w.pending[fp])
	}
	return w, out, nil
}

// bloatedLocked reports whether end churn warrants a compaction.
func (w *intentWAL) bloatedLocked() bool {
	return w.ops > 4*len(w.pending)+64
}

// rewriteLocked atomically replaces the journal with the pending begins.
func (w *intentWAL) rewriteLocked() error {
	tmp := w.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("serve: rewrite intent wal: %w", err)
	}
	bw := bufio.NewWriter(f)
	enc := json.NewEncoder(bw)
	for _, fp := range w.order {
		if err := enc.Encode(w.pending[fp]); err != nil {
			f.Close()
			return fmt.Errorf("serve: rewrite intent wal: %w", err)
		}
	}
	if err := bw.Flush(); err != nil {
		f.Close()
		return fmt.Errorf("serve: rewrite intent wal: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("serve: sync intent wal: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("serve: close intent wal: %w", err)
	}
	if w.f != nil {
		w.f.Close()
		w.f = nil
	}
	if err := os.Rename(tmp, w.path); err != nil {
		return fmt.Errorf("serve: install intent wal: %w", err)
	}
	w.ops = len(w.pending)
	g, err := os.OpenFile(w.path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("serve: reopen intent wal: %w", err)
	}
	w.f = g
	return nil
}

// appendLocked journals one op, optionally fsync'd.
func (w *intentWAL) appendLocked(op intentOp, sync bool) error {
	if w.closed || w.f == nil {
		return errors.New("serve: intent wal closed")
	}
	data, err := json.Marshal(op)
	if err != nil {
		return fmt.Errorf("serve: encode intent: %w", err)
	}
	if _, err := w.f.Write(append(data, '\n')); err != nil {
		return fmt.Errorf("serve: append intent: %w", err)
	}
	w.ops++
	if !sync {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("serve: sync intent: %w", err)
	}
	return nil
}

// begin durably journals an accepted submission.
func (w *intentWAL) begin(op intentOp) error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	op.Op = "begin"
	if _, ok := w.pending[op.Fingerprint]; !ok {
		w.order = append(w.order, op.Fingerprint)
	}
	w.pending[op.Fingerprint] = op
	return w.appendLocked(op, true)
}

// end marks a fingerprint's intent terminal. Unsynced: a crash that
// loses an end line merely requeues a campaign whose committed segment
// (or failed status) terminates it again immediately. End is also where
// the journal compacts in-process, since ends are the unbounded traffic.
func (w *intentWAL) end(fp string) {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if _, ok := w.pending[fp]; ok {
		delete(w.pending, fp)
		for i, p := range w.order {
			if p == fp {
				w.order = append(w.order[:i], w.order[i+1:]...)
				break
			}
		}
	}
	_ = w.appendLocked(intentOp{Op: "end", Fingerprint: fp}, false)
	if w.bloatedLocked() {
		// Best effort, like the store manifest's in-process compaction.
		_ = w.rewriteLocked()
	}
}

// requeueIntents re-admits the campaigns a previous process accepted but
// never finished: every pending begin becomes a queued campaign with its
// original spec, trace ID and tenant, exactly as if the submitter had
// resubmitted the instant the daemon came back. Runs as a goroutine
// because the pending set may exceed the queue depth — the schedulers
// started alongside it drain what this loop feeds.
func (s *Server) requeueIntents(pending []intentOp) {
	defer s.wg.Done()
	for _, op := range pending {
		if s.ctx.Err() != nil {
			return
		}
		if op.Spec == nil {
			s.wal.end(op.Fingerprint)
			continue
		}
		spec := op.Spec.withDefaults()
		err := spec.Validate()
		if err != nil || spec.Fingerprint() != op.Fingerprint {
			// A journal line that no longer validates (or no longer
			// fingerprints to its key) cannot be trusted to re-run.
			s.logger.Warn("dropping unreplayable intent",
				"fingerprint", op.Fingerprint, "err", errString(err))
			s.wal.end(op.Fingerprint)
			continue
		}
		s.mu.Lock()
		if _, ok := s.store.Get(op.Fingerprint); ok {
			// The campaign committed after its begin landed but before its
			// end did; the manifest already answers this fingerprint.
			s.mu.Unlock()
			s.wal.end(op.Fingerprint)
			continue
		}
		if prev := s.byFP[op.Fingerprint]; prev != nil && prev.Status() != StatusFailed {
			s.mu.Unlock()
			s.wal.end(op.Fingerprint)
			continue
		}
		c := newCampaign(fmt.Sprintf("c%06d", s.nextID), spec, op.Fingerprint, s.spool)
		c.traceID = op.TraceID
		if !obs.ValidTraceID(c.traceID) {
			c.traceID = obs.NewTraceID()
		}
		c.tenant = op.Tenant
		c.queuedAt = time.Now()
		s.evictLocked()
		s.nextID++
		s.byID[c.id] = c
		s.byFP[op.Fingerprint] = c
		s.order = append(s.order, c)
		s.touchLocked(c)
		s.requeued++
		s.mu.Unlock()
		mRequeued.Inc()
		mQueueLen.Inc()
		s.logger.Info("campaign requeued from intent journal", withTenant([]any{
			"trace_id", c.traceID, "campaign", c.id, "fingerprint", op.Fingerprint}, c.tenant)...)
		select {
		case s.queue <- c:
		case <-s.ctx.Done():
			mQueueLen.Dec()
			return
		}
	}
}

// close releases the journal handle.
func (w *intentWAL) close() {
	if w == nil {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return
	}
	w.closed = true
	if w.f != nil {
		w.f.Sync()
		w.f.Close()
		w.f = nil
	}
}
