package serve

import (
	"encoding/json"
	"testing"
)

// fuzzSeeds is the in-code half of the seed corpus (the committed half
// lives under testdata/fuzz): valid exhaustive and adaptive specs, edge
// spellings, and malformed inputs.
var fuzzSeeds = []string{
	`{"seed":7,"benches":["mcf"],"voltages_mv":[980,940],"repetitions":2}`,
	`{"seed":7,"strategy":"adaptive","benches":["mcf","cactusADM"],"repetitions":4,"boards":2}`,
	`{"seed":7,"strategy":"adaptive","benches":["mcf"],"repetitions":10,"start_mv":980,"floor_mv":700,"coarse_step_mv":40,"resolution_mv":5,"max_runs":120}`,
	`{"name":"grid","corner":"TFF","board_seed":9,"seed":7,"core":"weakest","benches":["milc"],"voltages_mv":[980],"trefp_ms":32,"repetitions":1,"workers":4}`,
	`{"seed":0,"benches":[],"voltages_mv":[]}`,
	`{"seed":7,"strategy":"genetic","benches":["mcf"],"voltages_mv":[980],"repetitions":1}`,
	`{"name":"a\u0000TTT","seed":7,"benches":["mcf"],"voltages_mv":[-5,0,1e308],"repetitions":1}`,
	`{"seed":18446744073709551615,"benches":["mcf"],"voltages_mv":[980],"repetitions":2147483647,"boards":-1}`,
	`{not json`,
	`[]`,
	`{"seed":7,"benches":["mcf"],"voltages_mv":[980],"repetitions":1,"core":"pmd1.c2,junk"}`,
}

// FuzzSpecJSON throws arbitrary JSON at the submission path's pure half:
// decoding, defaulting, validation, fingerprinting and materialization
// must never panic, and every spec that validates must materialize into
// its strategy's engine form.
func FuzzSpecJSON(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec Spec
		if err := json.Unmarshal(data, &spec); err != nil {
			return
		}
		d := spec.withDefaults()
		err := d.Validate()
		// Fingerprinting is defined (and stable) for every decodable spec,
		// valid or not.
		if spec.Fingerprint() != spec.Fingerprint() {
			t.Fatal("fingerprint not stable")
		}
		if err != nil {
			return
		}
		switch d.Strategy {
		case StrategyAdaptive:
			if _, err := spec.Schedule(); err != nil {
				t.Fatalf("valid adaptive spec failed to materialize: %v", err)
			}
		default:
			if _, err := spec.Grid(); err != nil {
				t.Fatalf("valid exhaustive spec failed to materialize: %v", err)
			}
		}
	})
}

// FuzzFingerprint checks the cache-key contract on arbitrary decodable
// specs: fingerprints are invariant under semantic no-ops (defaulting,
// worker count, the documented zero-value aliases) and sensitive to every
// semantic mutation — fingerprint equality iff spec equality.
func FuzzFingerprint(f *testing.F) {
	for _, s := range fuzzSeeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var spec Spec
		if err := json.Unmarshal(data, &spec); err != nil {
			return
		}
		fp := spec.Fingerprint()

		// Semantic no-ops must not move the fingerprint.
		if got := spec.withDefaults().Fingerprint(); got != fp {
			t.Errorf("defaulting changed the fingerprint: %s -> %s", fp, got)
		}
		workers := spec
		workers.Workers += 7
		if workers.Fingerprint() != fp {
			t.Error("worker count leaked into the fingerprint")
		}
		if spec.BoardSeed == 0 {
			alias := spec
			alias.BoardSeed = spec.Seed
			if alias.Fingerprint() != fp {
				t.Error("board_seed 0 and board_seed == seed fingerprint differently")
			}
		}
		if spec.Boards == 0 {
			alias := spec
			alias.Boards = 1
			if alias.Fingerprint() != fp {
				t.Error("boards 0 and boards 1 fingerprint differently")
			}
		}

		// Semantic mutations must move it.
		mutations := map[string]func(*Spec){
			"seed":     func(s *Spec) { s.Seed++ },
			"name":     func(s *Spec) { s.Name += "x" },
			"bench":    func(s *Spec) { s.Benches = append(s.Benches, "namd") },
			"voltage":  func(s *Spec) { s.VoltagesMV = append(s.VoltagesMV, 123) },
			"reps":     func(s *Spec) { s.Repetitions++ },
			"trefp":    func(s *Spec) { s.TREFPMillis = altFloat(s.TREFPMillis) },
			"boards":   func(s *Spec) { s.Boards += 2 },
			"strategy": func(s *Spec) { s.Strategy = flipStrategy(s.withDefaults().Strategy) },
		}
		if spec.withDefaults().Strategy == StrategyAdaptive {
			mutations["resolution"] = func(s *Spec) { *s = s.withDefaults(); s.ResolutionMV = altFloat(s.ResolutionMV) }
			mutations["floor"] = func(s *Spec) { *s = s.withDefaults(); s.FloorMV = altFloat(s.FloorMV) }
			mutations["budget"] = func(s *Spec) { s.MaxRuns += 5 }
			mutations["cross_seed"] = func(s *Spec) { s.CrossSeed = !s.CrossSeed }
		}
		for name, mutate := range mutations {
			mutated := spec
			mutated.Benches = append([]string(nil), spec.Benches...)
			mutated.VoltagesMV = append([]float64(nil), spec.VoltagesMV...)
			mutate(&mutated)
			if mutated.Fingerprint() == fp {
				t.Errorf("%s mutation did not change the fingerprint", name)
			}
		}
	})
}

func flipStrategy(s string) string {
	if s == StrategyAdaptive {
		return StrategyExhaustive
	}
	return StrategyAdaptive
}

// altFloat returns a value guaranteed to differ from v (v += c is the
// identity at float64 magnitudes where c vanishes in the mantissa).
func altFloat(v float64) float64 {
	if v == 16 {
		return 32
	}
	return 16
}
