package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/fault"
	"repro/internal/store"
	"repro/internal/wire"
)

// crashDaemonDir fabricates the exact on-disk state a daemon killed
// mid-campaign leaves behind: an intent journal holding the accepted
// submission's begin, and a flushed-but-uncommitted segment .tmp with the
// first crashRecords records of the grid.
func crashDaemonDir(t *testing.T, spec Spec, format wire.Format, crashRecords int) (string, string) {
	t.Helper()
	spec = spec.withDefaults()
	fp := spec.Fingerprint()
	dir := t.TempDir()

	grid, err := spec.Grid()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := campaign.RunGrid(campaign.Config{Workers: 1, Seed: spec.Seed}, grid)
	if err != nil {
		t.Fatal(err)
	}
	if crashRecords > 0 {
		st, err := store.Open(store.Options{Dir: dir, Format: format})
		if err != nil {
			t.Fatal(err)
		}
		w, err := st.Begin(fp)
		if err != nil {
			t.Fatal(err)
		}
		for _, rec := range rep.Records[:crashRecords] {
			if err := w.Record(rec); err != nil {
				t.Fatal(err)
			}
		}
		// No Commit, no Abort: the .tmp stays, flushed record by record.
		st.Close()
	}
	line, err := json.Marshal(intentOp{Op: "begin", Fingerprint: fp, Spec: &spec, TraceID: "", Tenant: "crash-tenant"})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, intentName), append(line, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir, fp
}

// waitFingerprintDone polls until the fingerprint's campaign (requeued at
// boot, so it has no submit response to learn the ID from) turns terminal.
func waitFingerprintDone(t *testing.T, s *Server, fp string) *Campaign {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		s.mu.Lock()
		c := s.byFP[fp]
		s.mu.Unlock()
		if c != nil && c.Status().terminal() {
			return c
		}
		if time.Now().After(deadline) {
			t.Fatalf("fingerprint %s never reached a terminal state", fp)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// segmentBytes reads the single committed segment in a store directory.
func segmentBytes(t *testing.T, dir string) []byte {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "seg-*"))
	if err != nil {
		t.Fatal(err)
	}
	var segs [][]byte
	for _, m := range matches {
		if filepath.Ext(m) == ".tmp" {
			continue
		}
		data, err := os.ReadFile(m)
		if err != nil {
			t.Fatal(err)
		}
		segs = append(segs, data)
	}
	if len(segs) != 1 {
		t.Fatalf("store dir holds %d committed segments, want 1 (%v)", len(segs), matches)
	}
	return segs[0]
}

// TestCrashResumeByteIdentical is the tentpole acceptance test: a daemon
// booted on a crashed predecessor's directory requeues the interrupted
// campaign from the intent journal, restores the checkpointed prefix,
// executes only the remaining cells, and both the stream and the committed
// segment come out byte-identical to an uninterrupted run — at several
// worker counts and in both segment formats. The crash point (5 records)
// deliberately tears a cell: two whole cells (4 records) restore, the torn
// fifth re-runs.
func TestCrashResumeByteIdentical(t *testing.T) {
	for _, format := range []wire.Format{wire.FormatJSONL, wire.FormatBinary} {
		t.Run(string(format), func(t *testing.T) {
			// Reference: the same spec characterized by an uninterrupted
			// daemon, for segment-level comparison.
			refDir := t.TempDir()
			_, refTS := storeServer(t, refDir, Options{SegmentFormat: format})
			refSub := submit(t, refTS, testSpec(2), http.StatusAccepted)
			wantStream := streamBytes(t, refTS, refSub.ID)
			wantSeg := segmentBytes(t, refDir)

			for _, workers := range []int{1, 4, 16} {
				spec := testSpec(workers)
				total := expectedRecords(spec)
				perCell := spec.Repetitions
				crashAt := 2*perCell + 1 // two whole cells + a torn one
				dir, fp := crashDaemonDir(t, spec, format, crashAt)

				s, ts := storeServer(t, dir, Options{SegmentFormat: format})
				c := waitFingerprintDone(t, s, fp)
				if c.Status() != StatusDone {
					t.Fatalf("workers=%d: requeued campaign ended %s (%s)", workers, c.Status(), c.view().Error)
				}
				if got := streamBytes(t, ts, c.id); !bytes.Equal(got, wantStream) {
					t.Errorf("workers=%d: resumed stream differs from uninterrupted run", workers)
				}
				if got := segmentBytes(t, dir); !bytes.Equal(got, wantSeg) {
					t.Errorf("workers=%d: resumed segment differs from uninterrupted run", workers)
				}
				stats := serverStats(t, ts)
				if stats.Store == nil {
					t.Fatalf("workers=%d: no store stats", workers)
				}
				if stats.Store.Requeued != 1 || stats.Store.GridsResumed != 1 {
					t.Errorf("workers=%d: requeued=%d grids_resumed=%d, want 1/1",
						workers, stats.Store.Requeued, stats.Store.GridsResumed)
				}
				if want := 2 * perCell; stats.Store.RunsSaved != want {
					t.Errorf("workers=%d: runs_saved = %d, want %d (whole cells only)",
						workers, stats.Store.RunsSaved, want)
				}
				if v := c.view(); v.Runs != total-2*perCell {
					t.Errorf("workers=%d: engine ran %d records, want %d", workers, v.Runs, total-2*perCell)
				}
				if tn := c.view().Tenant; tn != "crash-tenant" {
					t.Errorf("workers=%d: requeued campaign lost its tenant: %q", workers, tn)
				}
				// The intent is terminal and the checkpoint consumed: a
				// THIRD boot must find nothing to requeue or resume.
				ts.Close()
				s.Close()
				s2, ts2 := storeServer(t, dir, Options{SegmentFormat: format})
				stats2 := serverStats(t, ts2)
				if stats2.Store.Requeued != 0 || stats2.Store.Checkpoints != 0 {
					t.Errorf("workers=%d: third boot requeued=%d checkpoints=%d, want 0/0",
						workers, stats2.Store.Requeued, stats2.Store.Checkpoints)
				}
				if got := s2.gridsRunCount(); got != 0 {
					t.Errorf("workers=%d: third boot ran %d grids", workers, got)
				}
				ts2.Close()
				s2.Close()
			}
		})
	}
}

// TestIntentRequeueWithoutCheckpoint: a campaign accepted but killed before
// its first record still requeues at boot and runs from scratch.
func TestIntentRequeueWithoutCheckpoint(t *testing.T) {
	spec := testSpec(2)
	want := batchJSONL(t, spec)
	dir, fp := crashDaemonDir(t, spec, wire.FormatJSONL, 0)

	s, ts := storeServer(t, dir, Options{})
	c := waitFingerprintDone(t, s, fp)
	if c.Status() != StatusDone {
		t.Fatalf("requeued campaign ended %s", c.Status())
	}
	if got := streamBytes(t, ts, c.id); !bytes.Equal(got, want) {
		t.Error("requeued stream differs from batch output")
	}
	stats := serverStats(t, ts)
	if stats.Store.Requeued != 1 || stats.Store.GridsResumed != 0 || stats.Store.RunsSaved != 0 {
		t.Errorf("requeued=%d grids_resumed=%d runs_saved=%d, want 1/0/0",
			stats.Store.Requeued, stats.Store.GridsResumed, stats.Store.RunsSaved)
	}
}

// TestIntentEndAfterCommit: a crash in the window between segment commit
// and the journal's end line must NOT re-run the campaign — the manifest
// already answers the fingerprint.
func TestIntentEndAfterCommit(t *testing.T) {
	spec := testSpec(2).withDefaults()
	fp := spec.Fingerprint()
	dir := t.TempDir()

	// Committed segment, dangling begin.
	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	grid, err := spec.Grid()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := campaign.RunGrid(campaign.Config{Workers: 1, Seed: spec.Seed}, grid)
	if err != nil {
		t.Fatal(err)
	}
	w, err := st.Begin(fp)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range rep.Records {
		if err := w.Record(rec); err != nil {
			t.Fatal(err)
		}
	}
	meta, err := json.Marshal(metaOf(spec, 1, campaign.Stats{Shards: 1, Runs: len(rep.Records), Planned: len(rep.Records)}))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(meta); err != nil {
		t.Fatal(err)
	}
	st.Close()
	line, err := json.Marshal(intentOp{Op: "begin", Fingerprint: fp, Spec: &spec})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, intentName), append(line, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}

	s, ts := storeServer(t, dir, Options{})
	// The requeue goroutine resolves the intent against the manifest;
	// give it a beat, then prove nothing ran.
	deadline := time.Now().Add(5 * time.Second)
	for {
		s.wal.mu.Lock()
		pending := len(s.wal.pending)
		s.wal.mu.Unlock()
		if pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("intent never resolved against the committed segment")
		}
		time.Sleep(2 * time.Millisecond)
	}
	stats := serverStats(t, ts)
	if stats.GridsRun != 0 || stats.Store.Requeued != 0 {
		t.Errorf("grids_run=%d requeued=%d, want 0/0", stats.GridsRun, stats.Store.Requeued)
	}
	sub := submit(t, ts, spec, http.StatusOK)
	if !sub.Cached {
		t.Error("committed fingerprint not served from store")
	}
}

// TestReadyzLifecycle: /readyz is 200 on a healthy daemon, 503 while the
// store is degraded (write faults exhausted the tee's retries), recovers
// on the next successful commit, and 503 again once draining.
func TestReadyzLifecycle(t *testing.T) {
	readyz := func(ts string) int {
		resp, err := http.Get(ts + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	plan, err := fault.Parse("store.write:error@1+=ENOSPC")
	if err != nil {
		t.Fatal(err)
	}
	fault.Arm(plan)
	t.Cleanup(fault.Disarm)

	dir := t.TempDir()
	s, ts := storeServer(t, dir, Options{})
	if got := readyz(ts.URL); got != http.StatusOK {
		t.Fatalf("healthy readyz = %d", got)
	}

	// Every segment write ENOSPCs: the campaign completes memory-only and
	// the daemon turns unready.
	sub := submit(t, ts, testSpec(2), http.StatusAccepted)
	waitForStatus(t, s, sub.ID, StatusDone)
	if got := readyz(ts.URL); got != http.StatusServiceUnavailable {
		t.Fatalf("degraded readyz = %d, want 503", got)
	}
	stats := serverStats(t, ts)
	if stats.Store == nil || !stats.Store.Degraded {
		t.Error("stats does not report store degraded")
	}
	if got := streamBytes(t, ts, sub.ID); !bytes.Equal(got, batchJSONL(t, testSpec(2))) {
		t.Error("degraded campaign's stream is not byte-identical (memory-only path broke)")
	}

	// Disk "recovers": the next successful commit clears readiness.
	fault.Disarm()
	other := testSpec(2)
	other.Seed = 99
	sub2 := submit(t, ts, other, http.StatusAccepted)
	waitForStatus(t, s, sub2.ID, StatusDone)
	if got := readyz(ts.URL); got != http.StatusOK {
		t.Fatalf("recovered readyz = %d, want 200", got)
	}
	if stats := serverStats(t, ts); stats.Store.Degraded {
		t.Error("stats still reports degraded after recovery")
	}

	// Draining flips it off for good.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if got := readyz(ts.URL); got != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", got)
	}
}

// gridsRunCount snapshots the engine-invocation counter.
func (s *Server) gridsRunCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gridsRun
}

// TestDrainWaitsForFleetAdoption: a shutdown signal landing while a peer
// segment is being adopted must not strand the half-fetched replica —
// Drain waits for the in-flight adoption, the store ends clean (no .tmp
// debris), and the next boot replays the adopted characterization instead
// of re-running the grid.
func TestDrainWaitsForFleetAdoption(t *testing.T) {
	dirs := make([]string, 3)
	hs := startFleet(t, 3, "hush", func(i int, o *Options) {
		dirs[i] = t.TempDir()
		o.StoreDir = dirs[i]
	})
	a, b := hs[0], hs[1]
	spec := testSpec(2)
	fp := spec.withDefaults().Fingerprint()

	ca, _, err := a.srv.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitForStatus(t, a.srv, ca.id, StatusDone)

	// Stretch the adoption's body transfer so the drain demonstrably
	// overlaps it.
	plan, err := fault.Parse("fleet.fetch.body:delay@1=250ms")
	if err != nil {
		t.Fatal(err)
	}
	fault.Arm(plan)
	t.Cleanup(fault.Disarm)

	subErr := make(chan error, 1)
	go func() {
		_, _, err := b.srv.Submit(spec)
		subErr <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for b.srv.adopting.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("adoption never started")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := b.srv.Drain(ctx); err != nil {
		t.Fatalf("drain did not wait out the adoption: %v", err)
	}
	// Drain returning implies the adoption landed: replica committed, no
	// half-written debris, submission bounced with the draining error.
	if _, ok := b.srv.store.Get(fp); !ok {
		t.Fatal("drain returned before the adoption committed")
	}
	if err := <-subErr; !errors.Is(err, errDraining) {
		t.Fatalf("mid-drain submission returned %v, want errDraining", err)
	}
	if tmps, _ := filepath.Glob(filepath.Join(dirs[1], "seg-*.tmp")); len(tmps) != 0 {
		t.Fatalf(".tmp debris after drain: %v", tmps)
	}

	// The next boot on B's directory answers from the adopted replica.
	fault.Disarm()
	s2, ts2 := storeServer(t, dirs[1], Options{})
	sub := submit(t, ts2, spec, http.StatusOK)
	if !sub.Cached {
		t.Error("adopted characterization not served from disk after reboot")
	}
	if got := s2.gridsRunCount(); got != 0 {
		t.Errorf("reboot ran %d grids, want 0", got)
	}
}
