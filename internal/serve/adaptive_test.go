package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/campaign"
	"repro/internal/core"
)

// adaptiveSpec is a small adaptive submission: two benchmarks, a two-board
// fleet, paper resolution.
func adaptiveSpec(workers int) Spec {
	return Spec{
		Seed:        7,
		Strategy:    StrategyAdaptive,
		Benches:     []string{"mcf", "cactusADM"},
		Boards:      2,
		Repetitions: 4,
		Workers:     workers,
	}
}

// adaptiveBatchJSONL renders the spec's schedule as the engine's batch
// report in JSON Lines — the reference byte stream for adaptive campaigns.
func adaptiveBatchJSONL(t *testing.T, spec Spec) ([]byte, *campaign.ScheduleReport) {
	t.Helper()
	sched, err := spec.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := campaign.RunSchedule(campaign.Config{Workers: 1, Seed: spec.Seed}, sched)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink := core.NewJSONLSink(&buf)
	for _, rec := range rep.Records {
		if err := sink.Record(rec); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes(), rep
}

// TestAdaptiveSubmission runs the adaptive strategy end to end through the
// daemon: the live stream is byte-identical to the offline schedule run at
// every worker count, the view separates planned from executed runs, and a
// resubmission is a cache hit.
func TestAdaptiveSubmission(t *testing.T) {
	want, offline := adaptiveBatchJSONL(t, adaptiveSpec(0))
	if len(want) == 0 {
		t.Fatal("reference adaptive stream is empty")
	}
	for _, workers := range []int{1, 4, 16} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			_, ts := newTestServer(t, Options{})
			sr := submit(t, ts, adaptiveSpec(workers), http.StatusAccepted)
			if sr.Cached {
				t.Fatal("first adaptive submission reported cached")
			}
			if got := streamBytes(t, ts, sr.ID); !bytes.Equal(got, want) {
				t.Errorf("adaptive stream differs from offline schedule run\ngot  %d bytes\nwant %d bytes", len(got), len(want))
			}
		})
	}

	s, ts := newTestServer(t, Options{})
	sr := submit(t, ts, adaptiveSpec(4), http.StatusAccepted)
	streamBytes(t, ts, sr.ID)
	resp, err := http.Get(ts.URL + "/campaigns/" + sr.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.Runs != offline.Stats.Runs || v.PlannedRuns != offline.Stats.Planned {
		t.Errorf("view runs %d/planned %d, engine %d/%d", v.Runs, v.PlannedRuns, offline.Stats.Runs, offline.Stats.Planned)
	}
	if v.SkippedRuns != v.PlannedRuns-v.Runs || v.SkippedRuns <= 0 {
		t.Errorf("skipped %d, planned %d, runs %d — adaptive view must expose avoided work", v.SkippedRuns, v.PlannedRuns, v.Runs)
	}
	outcomes := 0
	for _, n := range v.Outcomes {
		outcomes += n
	}
	if outcomes != v.Runs {
		t.Errorf("view outcomes sum to %d, want executed runs %d (skipped points are not failures)", outcomes, v.Runs)
	}

	// Same characterization, different worker count: cache hit, no re-run.
	again := submit(t, ts, adaptiveSpec(16), http.StatusOK)
	if !again.Cached || again.ID != sr.ID {
		t.Fatalf("adaptive resubmission not served from cache: %+v", again)
	}
	s.mu.Lock()
	gridsRun := s.gridsRun
	s.mu.Unlock()
	if gridsRun != 1 {
		t.Errorf("grids run = %d, want 1", gridsRun)
	}
}

// TestStrategyFingerprints pins the extended cache key: exhaustive and
// adaptive submissions can never collide, semantically identical adaptive
// spellings share an entry, and every adaptive knob is load-bearing.
func TestStrategyFingerprints(t *testing.T) {
	adaptive := adaptiveSpec(0)
	exhaustive := testSpec(0)
	if adaptive.Fingerprint() == exhaustive.Fingerprint() {
		t.Error("adaptive and exhaustive specs share a fingerprint")
	}
	// Explicit defaults and empty fields are the same characterization.
	explicit := adaptive
	explicit.StartMV = 980
	explicit.FloorMV = 700
	explicit.CoarseStepMV = 40
	explicit.ResolutionMV = 5
	if explicit.Fingerprint() != adaptive.Fingerprint() {
		t.Error("defaulted adaptive fields changed the fingerprint")
	}
	oneBoard := testSpec(0)
	oneBoard.Boards = 1
	if oneBoard.Fingerprint() != testSpec(0).Fingerprint() {
		t.Error("boards 0 and boards 1 fingerprint differently")
	}
	// The hash input must parse unambiguously: a bench name embedding what
	// looks like a voltage entry must not collide with the spec that
	// actually has that voltage.
	crafted := Spec{Seed: 7, Benches: []string{"mcf\x00v:980"}, Repetitions: 1}
	honest := Spec{Seed: 7, Benches: []string{"mcf"}, VoltagesMV: []float64{980}, Repetitions: 1}
	if crafted.Fingerprint() == honest.Fingerprint() {
		t.Error("crafted bench name impersonated a voltage list entry")
	}
	withWorkers := adaptive
	withWorkers.Workers = 9
	if withWorkers.Fingerprint() != adaptive.Fingerprint() {
		t.Error("worker count changed the adaptive fingerprint")
	}
	for name, mutate := range map[string]func(*Spec){
		"boards":     func(s *Spec) { s.Boards = 3 },
		"start":      func(s *Spec) { s.StartMV = 960 },
		"floor":      func(s *Spec) { s.FloorMV = 750 },
		"coarse":     func(s *Spec) { s.CoarseStepMV = 20 },
		"resolution": func(s *Spec) { s.ResolutionMV = 10 },
		"max_runs":   func(s *Spec) { s.MaxRuns = 50 },
	} {
		mutated := adaptive
		mutated.Benches = append([]string(nil), adaptive.Benches...)
		mutate(&mutated)
		if mutated.Fingerprint() == adaptive.Fingerprint() {
			t.Errorf("%s change did not change the adaptive fingerprint", name)
		}
	}
}

// TestAdaptiveSpecValidation covers the strategy-specific shape rules.
func TestAdaptiveSpecValidation(t *testing.T) {
	bad := []Spec{
		// exhaustive spec carrying adaptive knobs
		{Seed: 1, Benches: []string{"mcf"}, VoltagesMV: []float64{980}, Repetitions: 1, ResolutionMV: 5},
		{Seed: 1, Benches: []string{"mcf"}, VoltagesMV: []float64{980}, Repetitions: 1, MaxRuns: 10},
		// adaptive spec carrying a voltage grid
		{Seed: 1, Strategy: StrategyAdaptive, Benches: []string{"mcf"}, VoltagesMV: []float64{980}, Repetitions: 1},
		// adaptive with broken descent parameters
		{Seed: 1, Strategy: StrategyAdaptive, Benches: []string{"mcf"}, Repetitions: 1, CoarseStepMV: 7},
		{Seed: 1, Strategy: StrategyAdaptive, Benches: []string{"mcf"}, Repetitions: 1, FloorMV: 1200},
		{Seed: 1, Strategy: StrategyAdaptive, Benches: []string{"mcf"}, Repetitions: 1, MaxRuns: -1},
		// unknown strategy / negative fleet
		{Seed: 1, Strategy: "genetic", Benches: []string{"mcf"}, VoltagesMV: []float64{980}, Repetitions: 1},
		{Seed: 1, Benches: []string{"mcf"}, VoltagesMV: []float64{980}, Repetitions: 1, Boards: -1},
	}
	for i, spec := range bad {
		if err := spec.withDefaults().Validate(); err == nil {
			t.Errorf("bad spec %d accepted: %+v", i, spec)
		}
	}
	ok := Spec{Seed: 1, Strategy: StrategyAdaptive, Benches: []string{"mcf"}, Repetitions: 1, Boards: 2}
	if err := ok.withDefaults().Validate(); err != nil {
		t.Errorf("valid adaptive spec rejected: %v", err)
	}
}

// TestCacheEviction pins the bounded registry: beyond CacheMax the
// least-recently-used finished campaign is dropped — its id stops
// resolving and resubmitting its fingerprint re-runs the grid instead of
// replaying the buffer (no unbounded record-buffer growth).
func TestCacheEviction(t *testing.T) {
	s, ts := newTestServer(t, Options{CacheMax: 1})
	mk := func(seed uint64) Spec {
		sp := testSpec(1)
		sp.Seed = seed
		return sp
	}
	first := submit(t, ts, mk(100), http.StatusAccepted)
	streamBytes(t, ts, first.ID) // runs to completion → evictable

	second := submit(t, ts, mk(101), http.StatusAccepted)
	if second.Cached {
		t.Fatal("distinct spec reported cached")
	}
	streamBytes(t, ts, second.ID)

	// The first campaign was evicted on the second submission.
	resp, err := http.Get(ts.URL + "/campaigns/" + first.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("evicted campaign still resolves: status %d", resp.StatusCode)
	}

	// Resubmitting the evicted fingerprint is a miss: the grid re-runs.
	again := submit(t, ts, mk(100), http.StatusAccepted)
	if again.Cached {
		t.Fatal("evicted fingerprint served from cache")
	}
	if again.ID == first.ID {
		t.Error("evicted campaign's id reused for its re-run")
	}
	streamBytes(t, ts, again.ID)

	s.mu.Lock()
	gridsRun, evictions, cached := s.gridsRun, s.evictions, len(s.order)
	s.mu.Unlock()
	if gridsRun != 3 {
		t.Errorf("grids run = %d, want 3 (eviction must force a re-run)", gridsRun)
	}
	if evictions < 2 {
		t.Errorf("evictions = %d, want >= 2", evictions)
	}
	if cached > 1 {
		t.Errorf("registry holds %d campaigns, cap is 1", cached)
	}
}
