package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

// scrapeMetrics GETs /metrics and returns the exposition body after
// checking the content type.
func scrapeMetrics(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Errorf("/metrics content type %q, want %q", ct, obs.ContentType)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// metricValue extracts one sample's value from an exposition body.
// sample is the full sample name including any label set, e.g.
// `campaignd_submissions_total{result="accepted"}`.
func metricValue(t *testing.T, body, sample string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, sample) {
			continue
		}
		rest := line[len(sample):]
		if !strings.HasPrefix(rest, " ") {
			continue // longer name sharing the prefix
		}
		var v float64
		if _, err := fmt.Sscanf(rest, "%g", &v); err != nil {
			t.Fatalf("parse %q: %v", line, err)
		}
		return v
	}
	t.Fatalf("sample %q not found in exposition", sample)
	return 0
}

// TestMetricsEndpoint pins the /metrics surface: the exposition parses
// under the strict linter (well-formed lines, declared families, no
// duplicates, cumulative histogram buckets), includes every layer's
// families, and moves when campaigns run.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	before := scrapeMetrics(t, ts.URL)
	if err := obs.Lint(strings.NewReader(before)); err != nil {
		t.Fatalf("exposition lint: %v", err)
	}
	acceptedBefore := metricValue(t, before, `campaignd_submissions_total{result="accepted"}`)
	cachedBefore := metricValue(t, before, `campaignd_submissions_total{result="cached"}`)

	spec := testSpec(2)
	spec.Seed = 4242
	sr := submit(t, ts, spec, http.StatusAccepted)
	streamBytes(t, ts, sr.ID)
	submit(t, ts, spec, http.StatusOK) // cache hit

	after := scrapeMetrics(t, ts.URL)
	if err := obs.Lint(strings.NewReader(after)); err != nil {
		t.Fatalf("exposition lint after traffic: %v", err)
	}
	if got := metricValue(t, after, `campaignd_submissions_total{result="accepted"}`); got != acceptedBefore+1 {
		t.Errorf("accepted submissions %g, want %g", got, acceptedBefore+1)
	}
	if got := metricValue(t, after, `campaignd_submissions_total{result="cached"}`); got != cachedBefore+1 {
		t.Errorf("cached submissions %g, want %g", got, cachedBefore+1)
	}

	// Every layer's families must be present in one scrape: the whole
	// point of the process-wide registry is a single pane of glass.
	for _, family := range []string{
		"campaignd_submissions_total",
		"campaignd_campaigns_run_total",
		"campaignd_queue_length",
		"campaignd_queue_wait_seconds_bucket",
		"campaignd_active_subscribers",
		"campaignd_stream_bytes_total",
		"campaignd_dropped_records_total",
		"campaignd_draining",
		"campaign_run_seconds_bucket",
		"campaign_runs_total",
		"campaign_board_pool_checkouts_total",
		"store_segments",
		"store_commits_total",
		"wire_frames_encoded_total",
		"wire_encoded_bytes_total",
	} {
		if !strings.Contains(after, "\n"+family) && !strings.HasPrefix(after, family) {
			t.Errorf("family %s missing from exposition", family)
		}
	}

	// The campaign actually streamed: the engine histogram observed a run
	// and the stream byte counter moved.
	if got := metricValue(t, after, "campaign_run_seconds_count"); got < 1 {
		t.Errorf("campaign_run_seconds_count = %g, want >= 1", got)
	}
	if got := metricValue(t, after, "campaignd_stream_bytes_total"); got <= 0 {
		t.Errorf("campaignd_stream_bytes_total = %g, want > 0", got)
	}
}

// syncBuffer is a goroutine-safe bytes.Buffer for capturing the server's
// structured log stream (the scheduler logs from its own goroutines).
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestTraceIDPropagation pins the trace lifecycle: the ID minted (or
// adopted) at POST appears in the submit response body and X-Trace-ID
// header, in the campaign view, in the stream's X-Trace-ID header, and in
// every structured log line for the campaign — and a cache hit echoes the
// ORIGINAL campaign's ID, because the trace follows the measurement, not
// the request.
func TestTraceIDPropagation(t *testing.T) {
	logs := &syncBuffer{}
	logger := slog.New(slog.NewJSONHandler(logs, nil))
	_, ts := newTestServer(t, Options{Logger: logger})

	const clientTrace = "e2e-test-trace-0001"
	spec := testSpec(1)
	spec.Seed = 5151
	body, _ := json.Marshal(spec)
	req, _ := http.NewRequest("POST", ts.URL+"/campaigns", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Trace-ID", clientTrace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var sr submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if sr.TraceID != clientTrace {
		t.Fatalf("response trace_id %q, want adopted client trace %q", sr.TraceID, clientTrace)
	}
	if h := resp.Header.Get("X-Trace-ID"); h != clientTrace {
		t.Errorf("submit X-Trace-ID header %q, want %q", h, clientTrace)
	}

	// Stream metadata carries the same ID (header only — the NDJSON body
	// stays byte-identical to the batch report).
	streamResp, err := http.Get(ts.URL + "/campaigns/" + sr.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	if h := streamResp.Header.Get("X-Trace-ID"); h != clientTrace {
		t.Errorf("stream X-Trace-ID header %q, want %q", h, clientTrace)
	}
	io.Copy(io.Discard, streamResp.Body)
	streamResp.Body.Close()

	// The campaign view reports it.
	getResp, err := http.Get(ts.URL + "/campaigns/" + sr.ID)
	if err != nil {
		t.Fatal(err)
	}
	var v View
	if err := json.NewDecoder(getResp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if v.TraceID != clientTrace {
		t.Errorf("view trace_id %q, want %q", v.TraceID, clientTrace)
	}

	// A cache hit keeps the original trace, even when the second client
	// offers its own.
	req2, _ := http.NewRequest("POST", ts.URL+"/campaigns", bytes.NewReader(body))
	req2.Header.Set("X-Trace-ID", "someone-elses-trace")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	var sr2 submitResponse
	if err := json.NewDecoder(resp2.Body).Decode(&sr2); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if !sr2.Cached || sr2.TraceID != clientTrace {
		t.Errorf("cache hit trace_id %q (cached=%v), want original %q", sr2.TraceID, sr2.Cached, clientTrace)
	}

	// The structured log stitched the whole lifecycle to the same ID:
	// queued, running and finished lines all carry it.
	logged := logs.String()
	for _, event := range []string{"campaign queued", "campaign running", "campaign finished", "submission served from cache"} {
		found := false
		for _, line := range strings.Split(logged, "\n") {
			if strings.Contains(line, event) && strings.Contains(line, clientTrace) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no %q log line carrying trace %q\nlogs:\n%s", event, clientTrace, logged)
		}
	}

	// An invalid client trace is replaced with a server-minted one, never
	// rejected and never echoed into headers or logs.
	const badTrace = "bad trace, spaces & punctuation!"
	req3, _ := http.NewRequest("POST", ts.URL+"/campaigns", strings.NewReader(mustJSON(t, testSpec(1))))
	req3.Header.Set("X-Trace-ID", badTrace)
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	var sr3 submitResponse
	if err := json.NewDecoder(resp3.Body).Decode(&sr3); err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if sr3.TraceID == "" || sr3.TraceID == badTrace {
		t.Errorf("invalid client trace not replaced: %q", sr3.TraceID)
	}
	if !obs.ValidTraceID(sr3.TraceID) {
		t.Errorf("server minted invalid trace %q", sr3.TraceID)
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestDrainUnderLoad pins graceful shutdown with traffic in flight: while
// a campaign runs (parked on the test gate), Drain flips the server to
// draining — new submissions 503, /stats and /metrics say so — and only
// returns once the in-flight campaign commits. Nothing measured before
// the drain is lost. Run under -race in CI.
func TestDrainUnderLoad(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Options{StoreDir: dir, Concurrency: 1})
	gate := make(chan struct{})
	s.gate = gate

	spec := testSpec(2)
	spec.Seed = 6363
	sr := submit(t, ts, spec, http.StatusAccepted)
	deadline := time.Now().Add(5 * time.Second)
	for s.lookup(sr.ID).Status() != StatusRunning {
		if time.Now().After(deadline) {
			t.Fatal("campaign never started")
		}
		time.Sleep(time.Millisecond)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()

	// Draining is observable before it completes: submissions bounce with
	// 503 and both stats surfaces report the state.
	waitDeadline := time.Now().Add(5 * time.Second)
	for {
		s.mu.Lock()
		draining := s.draining
		s.mu.Unlock()
		if draining {
			break
		}
		if time.Now().After(waitDeadline) {
			t.Fatal("drain never engaged")
		}
		time.Sleep(time.Millisecond)
	}
	reject := testSpec(1)
	reject.Seed = 6364
	body, _ := json.Marshal(reject)
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submission during drain got %d, want 503", resp.StatusCode)
	}
	metrics := scrapeMetrics(t, ts.URL)
	if err := obs.Lint(strings.NewReader(metrics)); err != nil {
		t.Fatalf("exposition lint during drain: %v", err)
	}
	if got := metricValue(t, metrics, "campaignd_draining"); got < 1 {
		t.Errorf("campaignd_draining = %g during drain, want >= 1", got)
	}
	var stats statsResponse
	statsResp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(statsResp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	statsResp.Body.Close()
	if !stats.Draining {
		t.Error("/stats draining=false during drain")
	}
	if stats.UptimeS <= 0 {
		t.Error("/stats uptime_s not positive")
	}

	// Release the in-flight campaign; drain must complete and the segment
	// must be durable (committed exactly once, before Drain returned).
	close(gate)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if st := s.lookup(sr.ID).Status(); st != StatusDone {
		t.Fatalf("in-flight campaign ended %q, want done", st)
	}
	if s.store == nil {
		t.Fatal("store not open")
	}
	if got := s.store.Stats().Segments; got != 1 {
		t.Errorf("store segments after drain = %d, want 1", got)
	}
}

// TestVersionEndpoint pins GET /version: module identity, go version and
// a live uptime.
func TestVersionEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, err := http.Get(ts.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/version status %d", resp.StatusCode)
	}
	var v versionResponse
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.GoVersion == "" {
		t.Error("go_version empty")
	}
	if v.Module == "" {
		t.Error("module empty")
	}
	if v.UptimeS < 0 {
		t.Errorf("uptime_s = %g, want >= 0", v.UptimeS)
	}
}

// TestSubscribeChanDrops pins the slow-subscriber accounting end to end: a
// Drop-policy SubscribeChan sink that never drains loses records without
// stalling the campaign, and the loss shows up in /stats
// dropped_records and the dropped-records counter.
func TestSubscribeChanDrops(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	before := scrapeMetrics(t, ts.URL)
	droppedBefore := metricValue(t, before, "campaignd_dropped_records_total")

	// Buffer 1 and no consumer: all but one record of the campaign drops.
	sink, cancel := s.SubscribeChan(1)
	defer cancel()

	spec := testSpec(1)
	spec.Seed = 7272
	sr := submit(t, ts, spec, http.StatusAccepted)
	streamBytes(t, ts, sr.ID) // campaign completed despite the stuck sink

	want := uint64(expectedRecords(spec) - 1)
	if got := sink.Dropped(); got != want {
		t.Errorf("sink dropped %d, want %d", got, want)
	}
	var stats statsResponse
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.DroppedRecords != want {
		t.Errorf("/stats dropped_records = %d, want %d", stats.DroppedRecords, want)
	}
	after := scrapeMetrics(t, ts.URL)
	if got := metricValue(t, after, "campaignd_dropped_records_total"); got != droppedBefore+float64(want) {
		t.Errorf("campaignd_dropped_records_total = %g, want %g", got, droppedBefore+float64(want))
	}
}
