package serve

import (
	"crypto/sha256"
	"crypto/subtle"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/wire"
)

// This file is the serve layer's half of the fleet federation
// (internal/fleet): the server side of the peer protocol, and the submit
// path's read-through replication. The division of labor: fleet owns the
// ring, per-peer health and the fetch wire client; serve owns where
// segments live (registry + durable store) and what adopting one means.
//
// Fleet traffic is deliberately outside both the tenant keyring and the
// rate limiter — it authenticates with the shared fleet secret, and a
// noisy tenant exhausting its token bucket must never starve peers of
// replication (see TestFleetBypassesTenantLimits).

var (
	mFleetReplications = obs.NewCounter("fleet_replications_total",
		"Characterizations adopted from fleet peers instead of running locally — each one is a whole campaign not re-measured.")
	mFleetServed = obs.NewCounter("fleet_segments_served_total",
		"Committed segments streamed to fleet peers over GET /fleet/segments.")
	mFleetAuthFailures = obs.NewCounter("fleet_auth_failures_total",
		"Fleet protocol requests rejected for a missing or wrong shared secret.")
)

// fleetStatsView is the federation's slice of GET /stats: the client's
// ring/health/fetch counters plus this server's adoption bookkeeping.
type fleetStatsView struct {
	fleet.Stats
	// Replications counts segments adopted from peers (grids_run stayed
	// untouched for each); SegmentsServed counts segments streamed out.
	Replications   uint64 `json:"replications"`
	SegmentsServed uint64 `json:"segments_served"`
}

// fleetPeerCount / fleetSelfID feed the startup log line without making
// the caller unwrap the optional config.
func fleetPeerCount(o *fleet.Options) int {
	if o == nil {
		return 0
	}
	return len(o.Peers)
}

func fleetSelfID(o *fleet.Options) string {
	if o == nil {
		return ""
	}
	return o.Self.ID
}

var errFleetSecret = errors.New("serve: fleet secret missing or wrong")

// fleetAuthed gates a fleet handler with the shared secret — compared
// constant-time like any other credential. No secret configured means a
// trusted network; the handlers still only exist when the fleet does.
func (s *Server) fleetAuthed(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if secret := s.fleet.Secret(); secret != "" {
			want := sha256.Sum256([]byte(secret))
			got := sha256.Sum256([]byte(r.Header.Get(fleet.HeaderSecret)))
			if subtle.ConstantTimeCompare(want[:], got[:]) != 1 {
				mFleetAuthFailures.Inc()
				s.logger.Warn("fleet request rejected: bad secret",
					"path", r.URL.Path, "remote", r.RemoteAddr,
					"peer", r.Header.Get(fleet.HeaderPeer))
				s.writeError(w, r, http.StatusForbidden, errFleetSecret)
				return
			}
		}
		h(w, r)
	}
}

// handleFleetRing reports this daemon's identity and ring version so
// peers (and operators) can detect membership disagreement directly.
func (s *Server) handleFleetRing(w http.ResponseWriter, r *http.Request) {
	ring := s.fleet.Ring()
	peers := ring.Peers()
	ids := make([]string, 0, len(peers))
	for _, p := range peers {
		ids = append(ids, p.ID)
	}
	w.Header().Set(fleet.HeaderPeer, s.fleet.Self().ID)
	w.Header().Set(fleet.HeaderRing, ring.Version())
	s.writeJSON(w, r, http.StatusOK, fleet.RingInfo{
		Peer:    s.fleet.Self().ID,
		Version: ring.Version(),
		Peers:   ids,
	})
}

var errRingMismatch = errors.New("serve: fleet ring version mismatch")

// handleFleetSegment streams a committed characterization to a peer: the
// manifest metadata in a header, the frames as a wire segment in the body
// (binary framing with per-record CRCs by default, ?format=jsonl for
// debugging). Only finished, whole campaigns are served; anything else is
// a 404 and the requester characterizes locally.
func (s *Server) handleFleetSegment(w http.ResponseWriter, r *http.Request) {
	ring := s.fleet.Ring()
	w.Header().Set(fleet.HeaderPeer, s.fleet.Self().ID)
	w.Header().Set(fleet.HeaderRing, ring.Version())
	if theirs := r.Header.Get(fleet.HeaderRing); theirs != "" && theirs != ring.Version() {
		// A peer configured with a different membership must not exchange
		// segments with this one: ownership disagrees, so replication
		// would smear segments across a split brain.
		s.fleet.NoteRingMismatch()
		s.logger.Warn("fleet fetch rejected: ring mismatch",
			"peer", r.Header.Get(fleet.HeaderPeer),
			"ours", ring.Version(), "theirs", theirs)
		s.writeError(w, r, http.StatusConflict, errRingMismatch)
		return
	}
	fp := r.PathValue("fp")
	frames, meta, err := s.fleetSegment(fp)
	switch {
	case errors.Is(err, errNoSegment):
		s.writeError(w, r, http.StatusNotFound,
			fmt.Errorf("serve: no committed segment for %q", fp))
		return
	case err != nil:
		w.Header().Set("Retry-After", "1")
		s.writeError(w, r, http.StatusServiceUnavailable, err)
		return
	}

	format := wire.FormatBinary
	if q := r.URL.Query().Get("format"); q != "" {
		if format, err = wire.ParseFormat(q); err != nil {
			s.writeError(w, r, http.StatusBadRequest, err)
			return
		}
	}
	w.Header().Set(fleet.HeaderMeta, base64.StdEncoding.EncodeToString(meta))
	w.Header().Set(fleet.HeaderRecords, strconv.Itoa(len(frames)))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	if format == wire.FormatJSONL {
		for _, f := range frames {
			if err := countWrite(w.Write(f.Line)); err != nil {
				return
			}
		}
	} else {
		if err := countWrite(w.Write(wire.Header())); err != nil {
			return
		}
		var scratch []byte
		for _, f := range frames {
			scratch, err = wire.AppendBinaryRecord(scratch[:0], f.Rec)
			if err != nil {
				s.logger.Warn("fleet segment encode failed",
					"fingerprint", fp, "err", err)
				return // mid-body: the peer's CRC/count check rejects the tail
			}
			if err := countWrite(w.Write(scratch)); err != nil {
				return
			}
		}
	}
	s.fleetServed.Add(1)
	mFleetServed.Inc()
	s.logger.Info("fleet segment served",
		"fingerprint", fp, "records", len(frames),
		"peer", r.Header.Get(fleet.HeaderPeer))
}

// errNoSegment means this daemon has no committed characterization for
// the fingerprint — the peer protocol's 404.
var errNoSegment = errors.New("serve: segment not here")

// fleetSegment locates a finished characterization's frames and manifest
// metadata: registry first (hydrating an adopted entry if needed), then
// the durable store directly — peer traffic reads the store without
// adopting into the registry, so replication cannot evict cache entries.
func (s *Server) fleetSegment(fp string) ([]core.Frame, json.RawMessage, error) {
	s.mu.Lock()
	c := s.byFP[fp]
	if c != nil {
		s.touchLocked(c)
	}
	s.mu.Unlock()
	if c != nil && c.Status() == StatusDone {
		if err := s.hydrate(c); err != nil {
			return nil, nil, err // transient store trouble: peer retries
		}
		if frames, stats, workers, ok := c.doneFrames(); ok {
			meta, err := json.Marshal(metaOf(c.spec, workers, stats))
			if err != nil {
				return nil, nil, err
			}
			return frames, meta, nil
		}
		// Hydration lost the segment between checks; fall through to disk.
	}
	if s.store != nil {
		if e, ok := s.store.Get(fp); ok {
			frames, err := s.store.LoadFrames(fp)
			if err != nil {
				if _, still := s.store.Get(fp); still {
					return nil, nil, fmt.Errorf("%w: %v", errStoreUnavailable, err)
				}
				return nil, nil, errNoSegment // quarantined: nothing to serve
			}
			return frames, e.Meta, nil
		}
	}
	return nil, nil, errNoSegment
}

// doneFrames snapshots a finished, hydrated campaign's buffer for the
// fleet protocol. The slice is capped at the observed length of the
// append-only buffer, so reading it after the lock drops is safe.
func (c *Campaign) doneFrames() ([]core.Frame, campaign.Stats, int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.status != StatusDone || (c.fromStore && !c.hydrated) {
		return nil, campaign.Stats{}, 0, false
	}
	return c.frames[:len(c.frames):len(c.frames)], c.stats, c.workers, true
}

// fleetFetch is the submit path's read-through: resolve the fingerprint
// against the fleet and adopt what comes back. Every failure mode ends
// the same way — the caller falls through to a local run — they differ
// only in what gets logged and counted.
func (s *Server) fleetFetch(fp, trace, tenant string) {
	seg, err := s.fleet.Fetch(s.ctx, fp)
	if err != nil {
		var mm *fleet.MismatchError
		switch {
		case errors.Is(err, fleet.ErrNotFound):
			s.logger.Info("fleet miss, characterizing locally", withTenant([]any{
				"trace_id", trace, "fingerprint", fp}, tenant)...)
		case errors.As(err, &mm):
			s.logger.Warn("fleet fetch rejected: ring mismatch, characterizing locally",
				withTenant([]any{"trace_id", trace, "fingerprint", fp,
					"peer", mm.Peer, "ours", mm.Ours, "theirs", mm.Theirs}, tenant)...)
		default:
			s.logger.Warn("fleet fetch failed, characterizing locally", withTenant([]any{
				"trace_id", trace, "fingerprint", fp, "err", err}, tenant)...)
		}
		return
	}
	if err := s.adoptRemote(fp, seg); err != nil {
		s.logger.Warn("fleet segment rejected, characterizing locally", withTenant([]any{
			"trace_id", trace, "fingerprint", fp, "peer", seg.Peer.ID, "err", err}, tenant)...)
		return
	}
	s.logger.Info("characterization replicated from peer", withTenant([]any{
		"trace_id", trace, "fingerprint", fp, "peer", seg.Peer.ID,
		"records", len(seg.Frames)}, tenant)...)
}

// adoptRemote installs a fetched segment: persist it (best-effort), then
// register a done, hydrated campaign so the submit loop's next pass is a
// cache hit. Like adoptLocked, it refuses metadata that does not
// fingerprint back to the key — a wrong or malicious peer must never
// impersonate another spec's characterization.
func (s *Server) adoptRemote(fp string, seg *fleet.Segment) error {
	var m storedMeta
	if err := json.Unmarshal(seg.Meta, &m); err != nil {
		return fmt.Errorf("peer segment meta: %w", err)
	}
	stats, err := m.campaignStats()
	if err != nil {
		return fmt.Errorf("peer segment meta: %w", err)
	}
	spec := m.Spec.withDefaults()
	if got := spec.Fingerprint(); got != fp {
		return fmt.Errorf("peer segment meta fingerprints to %s, want %s", got, fp)
	}
	if len(seg.Frames) == 0 {
		return errors.New("peer segment is empty")
	}
	if s.store != nil {
		// Best-effort: losing durability must not turn a replicated hit
		// into a failure — the in-memory adoption below still answers the
		// submission, exactly like a local campaign whose commit failed.
		if err := s.store.Adopt(fp, seg.Meta, seg.Frames); err != nil {
			s.noteStoreError()
			s.logger.Warn("replicated segment not persisted",
				"fingerprint", fp, "err", err)
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if prev := s.byFP[fp]; prev != nil && prev.Status() != StatusFailed {
		return nil // a racer satisfied the fingerprint while we fetched
	}
	c := newStoredCampaign(fmt.Sprintf("c%06d", s.nextID), spec, fp,
		s.spool, stats, m.Workers, len(seg.Frames))
	s.evictLocked()
	s.nextID++
	s.byID[c.id] = c
	s.byFP[fp] = c
	s.order = append(s.order, c)
	s.touchLocked(c)
	c.hydrateWith(seg.Frames)
	s.fleetReplications.Add(1)
	mFleetReplications.Inc()
	return nil
}
