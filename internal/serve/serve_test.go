package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
)

// testSpec is a small grid with a deep-undervolt setup so streams cross
// the crash/hang recovery paths, not just clean runs.
func testSpec(workers int) Spec {
	return Spec{
		Seed:        7,
		Benches:     []string{"mcf", "cactusADM"},
		VoltagesMV:  []float64{980, 880, 780},
		Repetitions: 2,
		Workers:     workers,
	}
}

// expectedRecords computes the spec's grid size.
func expectedRecords(s Spec) int {
	return len(s.Benches) * len(s.VoltagesMV) * s.Repetitions
}

// batchJSONL runs the spec's grid serially through the engine (no daemon)
// and renders the batch report as JSON Lines — the reference byte stream.
func batchJSONL(t *testing.T, spec Spec) []byte {
	t.Helper()
	grid, err := spec.Grid()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := campaign.RunGrid(campaign.Config{Workers: 1, Seed: spec.Seed}, grid)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	sink := core.NewJSONLSink(&buf)
	for _, rec := range rep.Records {
		if err := sink.Record(rec); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

// submit POSTs a spec and decodes the reply.
func submit(t *testing.T, ts *httptest.Server, spec Spec, wantStatus int) submitResponse {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit status %d, want %d: %s", resp.StatusCode, wantStatus, msg)
	}
	var sr submitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

// streamBytes tails a campaign's NDJSON stream to EOF.
func streamBytes(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/campaigns/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("stream content type %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestStreamMatchesBatchAcrossWorkers is the acceptance invariant: a
// campaign submitted to the daemon streams records byte-identical to the
// serial driver's batch output, at every worker count. The stream is
// opened while the campaign runs, so live tailing (not just cache replay)
// is what's measured.
func TestStreamMatchesBatchAcrossWorkers(t *testing.T) {
	want := batchJSONL(t, testSpec(0))
	if len(want) == 0 {
		t.Fatal("reference batch stream is empty")
	}
	for _, workers := range []int{1, 4, 16} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			// A fresh server per worker count: the fingerprint ignores
			// Workers, so a shared server would answer from cache instead
			// of re-running.
			_, ts := newTestServer(t, Options{})
			sr := submit(t, ts, testSpec(workers), http.StatusAccepted)
			if sr.Cached {
				t.Fatal("first submission reported cached")
			}
			got := streamBytes(t, ts, sr.ID)
			if !bytes.Equal(got, want) {
				t.Errorf("streamed bytes differ from serial batch output\ngot  %d bytes\nwant %d bytes", len(got), len(want))
			}
		})
	}
}

// TestCacheHit pins the characterization cache: an identical resubmission
// is served from the buffer without re-running the grid, and replays the
// same bytes.
func TestCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	spec := testSpec(4)
	first := submit(t, ts, spec, http.StatusAccepted)
	firstStream := streamBytes(t, ts, first.ID) // drains to completion

	// Same characterization at a different worker count: Workers is not
	// part of the fingerprint, so this must be a cache hit.
	respec := spec
	respec.Workers = 16
	second := submit(t, ts, respec, http.StatusOK)
	if !second.Cached || second.ID != first.ID {
		t.Fatalf("resubmission not served from cache: %+v", second)
	}
	if got := streamBytes(t, ts, second.ID); !bytes.Equal(got, firstStream) {
		t.Error("cache replay differs from the original stream")
	}

	s.mu.Lock()
	gridsRun, cacheHits := s.gridsRun, s.cacheHits
	s.mu.Unlock()
	if gridsRun != 1 {
		t.Errorf("grids run = %d, want 1 (cache hit must not re-run)", gridsRun)
	}
	if cacheHits != 1 {
		t.Errorf("cache hits = %d, want 1", cacheHits)
	}

	// A genuinely different spec (distinct seed) is a miss.
	other := spec
	other.Seed = 8
	third := submit(t, ts, other, http.StatusAccepted)
	if third.Cached || third.ID == first.ID {
		t.Errorf("distinct seed served from cache: %+v", third)
	}
	streamBytes(t, ts, third.ID)

	var stats statsResponse
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.Submissions != 3 || stats.CacheHits != 1 || stats.GridsRun != 2 {
		t.Errorf("stats = %+v, want 3 submissions / 1 hit / 2 grids", stats)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	bad := []Spec{
		{},        // zero seed
		{Seed: 1}, // no benches
		{Seed: 1, Benches: []string{"nope"}, VoltagesMV: []float64{980}, Repetitions: 1},                      // unknown bench
		{Seed: 1, Benches: []string{"mcf"}, Repetitions: 1},                                                   // no voltages
		{Seed: 1, Benches: []string{"mcf"}, VoltagesMV: []float64{980}},                                       // no reps
		{Seed: 1, Benches: []string{"mcf"}, VoltagesMV: []float64{980}, Repetitions: 1, Corner: "XYZ"},        // bad corner
		{Seed: 1, Benches: []string{"mcf"}, VoltagesMV: []float64{980}, Repetitions: 1, Core: "bogus"},        // bad core
		{Seed: 1, Benches: []string{"mcf"}, VoltagesMV: []float64{980}, Repetitions: 1, Core: "pmd1.c2,junk"}, // trailing garbage
		{Seed: 1, Benches: []string{"mcf"}, VoltagesMV: []float64{980}, Repetitions: 1, Core: "pmd9.c9"},      // out of range
		{Seed: 1, Benches: []string{"mcf"}, VoltagesMV: []float64{980}, Repetitions: 1, CrossSeed: true},      // cross_seed is adaptive-only
		{Seed: 1, Strategy: StrategyAdaptive, Benches: []string{"mcf"}, Repetitions: 1, CrossSeed: true},      // cross_seed without a fleet
	}
	for i, spec := range bad {
		body, _ := json.Marshal(spec)
		resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad spec %d accepted with status %d", i, resp.StatusCode)
		}
	}
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON accepted with status %d", resp.StatusCode)
	}
	if resp, err := http.Get(ts.URL + "/campaigns/cXXXXXX"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown campaign status %d", resp.StatusCode)
		}
	}
}

// TestQueueBound pins the bounded run queue: with the scheduler gated, a
// running campaign plus a full queue yields 503 for the next submission.
func TestQueueBound(t *testing.T) {
	s, ts := newTestServer(t, Options{QueueDepth: 1, Concurrency: 1})
	gate := make(chan struct{})
	s.gate = gate

	mk := func(seed uint64) Spec {
		sp := testSpec(1)
		sp.Seed = seed
		return sp
	}
	running := submit(t, ts, mk(100), http.StatusAccepted)
	// Wait until the scheduler picked it up (it parks on the gate after
	// setRunning), so the queue slot is demonstrably free.
	deadline := time.Now().Add(5 * time.Second)
	for s.lookup(running.ID).Status() != StatusRunning {
		if time.Now().After(deadline) {
			t.Fatal("campaign never started")
		}
		time.Sleep(time.Millisecond)
	}
	queued := submit(t, ts, mk(101), http.StatusAccepted)
	rejected := mk(102)
	body, _ := json.Marshal(rejected)
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("over-bound submission status %d, want 503", resp.StatusCode)
	}

	// The rejection rolled back cleanly: retrying after the queue drains
	// works.
	// A closed gate lets every subsequent execute pass immediately.
	close(gate)
	streamBytes(t, ts, running.ID)
	streamBytes(t, ts, queued.ID)
	retry := submit(t, ts, rejected, http.StatusAccepted)
	if retry.Cached {
		t.Error("rejected submission left a cache entry behind")
	}
	streamBytes(t, ts, retry.ID)
}

// TestFailedCampaign pins run-time failure handling: a spec that passes
// shape validation but fails on the bench (non-positive voltage) ends
// failed, terminates its stream, and does not satisfy its fingerprint —
// resubmission schedules a fresh attempt.
func TestFailedCampaign(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	spec := Spec{
		Seed:        9,
		Benches:     []string{"mcf"},
		VoltagesMV:  []float64{-5},
		Repetitions: 1,
	}
	sr := submit(t, ts, spec, http.StatusAccepted)
	streamBytes(t, ts, sr.ID) // must terminate despite the failure

	resp, err := http.Get(ts.URL + "/campaigns/" + sr.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.Status != StatusFailed || v.Error == "" {
		t.Fatalf("failed campaign view = %+v", v)
	}

	again := submit(t, ts, spec, http.StatusAccepted)
	if again.Cached || again.ID == sr.ID {
		t.Errorf("failed campaign served from cache: %+v", again)
	}
	streamBytes(t, ts, again.ID)
	s.mu.Lock()
	gridsRun := s.gridsRun
	s.mu.Unlock()
	if gridsRun != 2 {
		t.Errorf("grids run = %d, want 2 (failure must not be cached)", gridsRun)
	}
}

// TestSSEStream checks the event-stream framing of the same records.
func TestSSEStream(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	spec := Spec{Seed: 11, Benches: []string{"mcf"}, VoltagesMV: []float64{980}, Repetitions: 2}
	sr := submit(t, ts, spec, http.StatusAccepted)

	req, _ := http.NewRequest("GET", ts.URL+"/campaigns/"+sr.ID+"/stream", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("SSE content type %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if got := bytes.Count(data, []byte("data: ")); got != expectedRecords(spec)+1 {
		t.Errorf("SSE frames = %d, want %d records + done", got, expectedRecords(spec))
	}
	if !bytes.Contains(data, []byte("event: done")) {
		t.Error("SSE stream missing done event")
	}
}

// TestAttachSink wires the server-wide spool: every record of every
// campaign reaches an attached sink.
func TestAttachSink(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	spool := core.NewChanSink(1024, core.Block)
	s.AttachSink(spool)
	spec := Spec{Seed: 13, Benches: []string{"mcf"}, VoltagesMV: []float64{980, 940}, Repetitions: 2}
	sr := submit(t, ts, spec, http.StatusAccepted)
	streamBytes(t, ts, sr.ID)
	if got := len(spool.C()); got != expectedRecords(spec) {
		t.Errorf("spool received %d records, want %d", got, expectedRecords(spec))
	}
}

// TestSpecFingerprint covers the cache key itself.
func TestSpecFingerprint(t *testing.T) {
	base := testSpec(0)
	if base.Fingerprint() != base.Fingerprint() {
		t.Error("fingerprint not stable")
	}
	withWorkers := base
	withWorkers.Workers = 9
	if base.Fingerprint() != withWorkers.Fingerprint() {
		t.Error("worker count changed the fingerprint")
	}
	defaulted := base.withDefaults()
	if base.Fingerprint() != defaulted.Fingerprint() {
		t.Error("defaulting changed the fingerprint")
	}
	// BoardSeed 0 is documented as "the campaign seed": both spellings of
	// the same board must share a cache entry.
	explicit := base
	explicit.BoardSeed = base.Seed
	if base.Fingerprint() != explicit.Fingerprint() {
		t.Error("board_seed 0 and board_seed == seed fingerprint differently")
	}
	for name, mutate := range map[string]func(*Spec){
		"seed":       func(s *Spec) { s.Seed++ },
		"board_seed": func(s *Spec) { s.BoardSeed = 99 },
		"corner":     func(s *Spec) { s.Corner = "TFF" },
		"core":       func(s *Spec) { s.Core = "weakest" },
		"bench":      func(s *Spec) { s.Benches = append(s.Benches, "namd") },
		"voltage":    func(s *Spec) { s.VoltagesMV[0] += 5 },
		"reps":       func(s *Spec) { s.Repetitions++ },
		"trefp":      func(s *Spec) { s.TREFPMillis = 32 },
		"name":       func(s *Spec) { s.Name = "other" },
	} {
		mutated := base
		mutated.Benches = append([]string(nil), base.Benches...)
		mutated.VoltagesMV = append([]float64(nil), base.VoltagesMV...)
		mutate(&mutated)
		if mutated.Fingerprint() == base.Fingerprint() {
			t.Errorf("%s change did not change the fingerprint", name)
		}
	}
}
