package serve

import (
	"encoding/json"
	"net/http"
	"testing"
)

// warmSpec builds distinct small specs so each one fingerprints (and
// stores) separately.
func warmSpec(seed uint64) Spec {
	return Spec{
		Seed:        seed,
		Benches:     []string{"mcf"},
		VoltagesMV:  []float64{980},
		Repetitions: 1,
	}
}

// TestLazyWarmLoad pins the paged boot: with more stored campaigns than
// the WarmLoad threshold, boot adopts only the most-recently-used
// threshold entries, reports the split in /stats, and a deferred
// fingerprint still replays from disk on demand — cached, zero grids run.
func TestLazyWarmLoad(t *testing.T) {
	dir := t.TempDir()

	// First life: characterize four distinct specs. Submission order sets
	// the store's LRU order: seed 1 is the coldest entry.
	s1, ts1 := storeServer(t, dir, Options{})
	for seed := uint64(1); seed <= 4; seed++ {
		r := submit(t, ts1, warmSpec(seed), http.StatusAccepted)
		streamBytes(t, ts1, r.ID) // wait for completion + commit
	}
	ts1.Close()
	s1.Close()

	// Second life: page in at most 2 entries at boot.
	s2, ts2 := storeServer(t, dir, Options{WarmLoad: 2})
	defer ts2.Close()
	defer s2.Close()

	st := serverStats(t, ts2)
	if st.Store == nil {
		t.Fatal("store stats missing")
	}
	if st.Store.Boot.WarmLoaded != 2 || st.Store.Boot.Deferred != 2 {
		t.Fatalf("boot stats = %+v, want 2 warm-loaded / 2 deferred", st.Store.Boot)
	}
	if st.Cached != 2 {
		t.Fatalf("registry holds %d campaigns after boot, want 2", st.Cached)
	}

	// Only the two most recent entries were adopted.
	resp, err := http.Get(ts2.URL + "/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	var views []View
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(views) != 2 {
		t.Fatalf("listed %d campaigns, want 2", len(views))
	}

	// A deferred fingerprint pages in on first demand: cache hit, replay
	// from disk, no grid re-run.
	r := submit(t, ts2, warmSpec(1), http.StatusOK)
	if !r.Cached {
		t.Fatal("deferred entry was not served from the store")
	}
	if b := streamBytes(t, ts2, r.ID); len(b) == 0 {
		t.Fatal("deferred entry replayed an empty stream")
	}
	st = serverStats(t, ts2)
	if st.GridsRun != 0 {
		t.Fatalf("grids_run = %d after deferred replay, want 0", st.GridsRun)
	}
	if st.Store.ReplayHits != 1 {
		t.Fatalf("replay_hits = %d, want 1", st.Store.ReplayHits)
	}
	// Boot numbers are a boot-time snapshot; paging in later must not
	// rewrite history.
	if st.Store.Boot.WarmLoaded != 2 || st.Store.Boot.Deferred != 2 {
		t.Fatalf("boot stats changed after paging: %+v", st.Store.Boot)
	}
}

// TestWarmLoadDefaultsToCacheMax pins the default threshold: adopting more
// than the registry cap would evict the excess immediately, so WarmLoad
// follows CacheMax unless set explicitly.
func TestWarmLoadDefaultsToCacheMax(t *testing.T) {
	dir := t.TempDir()
	s1, ts1 := storeServer(t, dir, Options{})
	for seed := uint64(1); seed <= 3; seed++ {
		r := submit(t, ts1, warmSpec(seed), http.StatusAccepted)
		streamBytes(t, ts1, r.ID)
	}
	ts1.Close()
	s1.Close()

	s2, ts2 := storeServer(t, dir, Options{CacheMax: 2})
	defer ts2.Close()
	defer s2.Close()
	st := serverStats(t, ts2)
	if st.Store.Boot.WarmLoaded != 2 || st.Store.Boot.Deferred != 1 {
		t.Fatalf("boot stats = %+v, want 2 warm-loaded / 1 deferred (CacheMax default)", st.Store.Boot)
	}
}
