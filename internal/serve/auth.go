package serve

import (
	"context"
	"crypto/sha256"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// This file is the identity half of the daemon's front door. The paper's
// scenario is a shared pool of servers characterized on behalf of many
// workload owners; the serve layer maps that to tenants: every API key
// names the tenant it submits for, and the tenant ID follows the
// submission through structured logs, metric labels and the campaign
// view. Auth is opt-in — a Server built without keys answers anonymously,
// byte-identical to the pre-auth daemon — and the keyring is swappable at
// runtime (SetKeys) so campaignd can reload its keyfile on SIGHUP without
// dropping a single in-flight stream.
//
// Keys are bearer secrets, presented as "Authorization: Bearer <key>" or
// the "X-API-Key" header. The keyring never stores plaintext secrets
// beside the request path: lookup hashes the presented key and compares
// the digest against every entry with a constant-time comparison, without
// early exit, so response timing leaks neither key bytes nor which entry
// almost matched.

// Key is one keyring entry: a secret, the tenant it belongs to, and
// optional per-tenant overrides of the server-wide rate-limit defaults.
// This is also the keyfile's JSON element (see ParseKeyfile).
type Key struct {
	// Secret is the bearer token clients present. Required, and unique
	// within a keyring; several keys may name the same tenant (rotation:
	// old and new key valid at once).
	Secret string `json:"key"`
	// Tenant names the owner. Required; must satisfy ValidTenant, so it
	// is always safe as a metric label and a log attribute.
	Tenant string `json:"tenant"`
	// Disabled keeps the key in the file (audit trail, staged rotation)
	// while rejecting every request that presents it with 403.
	Disabled bool `json:"disabled,omitempty"`
	// RateLimit overrides Options.RateLimit for this tenant
	// (requests/second across submits and stream subscriptions).
	// Zero inherits the server default; negative means unlimited.
	RateLimit float64 `json:"rate_limit,omitempty"`
	// RateBurst overrides Options.RateBurst for this tenant. Zero
	// inherits.
	RateBurst int `json:"rate_burst,omitempty"`
	// MaxStreams overrides Options.MaxStreamsPerTenant: the concurrent
	// stream-subscriber cap. Zero inherits; negative means unlimited.
	MaxStreams int `json:"max_streams,omitempty"`
}

// ValidTenant reports whether a tenant name is acceptable: non-empty,
// bounded, and limited to characters that need no escaping in metric
// labels, log lines or HTTP headers — the same alphabet trace IDs use.
func ValidTenant(name string) bool {
	if len(name) == 0 || len(name) > 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return true
}

// anonTenant labels unauthenticated traffic in metrics and rate-limit
// accounting. Internally the anonymous tenant is the empty string (so
// views and logs stay byte-identical when auth is off); the label exists
// because an empty metric label reads as a bug on a dashboard.
const anonTenant = "anonymous"

// tenantLabel maps the internal tenant name to its metric label.
func tenantLabel(tenant string) string {
	if tenant == "" {
		return anonTenant
	}
	return tenant
}

// keyEntry is one compiled keyring slot: the secret's digest plus the
// declared Key (kept for tenant identity and limit overrides).
type keyEntry struct {
	digest [sha256.Size]byte
	key    Key
}

// Keyring is a compiled, immutable key set. Swap a new one in with
// Server.SetKeys; never mutate one that is installed.
type Keyring struct {
	entries []keyEntry
}

// NewKeyring compiles and validates a key set: every secret non-empty and
// unique, every tenant name valid. At least one key is required — an
// empty keyring would be an "auth enabled, everyone locked out" trap that
// a reload should never install by accident (disable auth by constructing
// the Server without keys instead).
func NewKeyring(keys []Key) (*Keyring, error) {
	if len(keys) == 0 {
		return nil, errors.New("serve: keyring needs at least one key")
	}
	kr := &Keyring{entries: make([]keyEntry, 0, len(keys))}
	seen := make(map[[sha256.Size]byte]bool, len(keys))
	for i, k := range keys {
		if k.Secret == "" {
			return nil, fmt.Errorf("serve: key %d has an empty secret", i)
		}
		if !ValidTenant(k.Tenant) {
			return nil, fmt.Errorf("serve: key %d has invalid tenant %q (1-64 chars of [A-Za-z0-9._-])", i, k.Tenant)
		}
		d := sha256.Sum256([]byte(k.Secret))
		if seen[d] {
			return nil, fmt.Errorf("serve: key %d duplicates an earlier secret", i)
		}
		seen[d] = true
		kr.entries = append(kr.entries, keyEntry{digest: d, key: k})
	}
	return kr, nil
}

// Tenants lists the distinct tenant names in declaration order.
func (kr *Keyring) Tenants() []string {
	seen := make(map[string]bool, len(kr.entries))
	var out []string
	for _, e := range kr.entries {
		if !seen[e.key.Tenant] {
			seen[e.key.Tenant] = true
			out = append(out, e.key.Tenant)
		}
	}
	return out
}

// authResult classifies a lookup.
type authResult int

const (
	authOK authResult = iota
	authUnknown
	authDisabled
)

// lookup resolves a presented secret. It hashes the secret and compares
// the digest against EVERY entry with subtle.ConstantTimeCompare — no
// early exit — so timing does not reveal whether (or where) a near-match
// sits in the ring.
func (kr *Keyring) lookup(secret string) (Key, authResult) {
	d := sha256.Sum256([]byte(secret))
	match := -1
	for i := range kr.entries {
		if subtle.ConstantTimeCompare(d[:], kr.entries[i].digest[:]) == 1 {
			match = i
		}
	}
	if match < 0 {
		return Key{}, authUnknown
	}
	if kr.entries[match].key.Disabled {
		return Key{}, authDisabled
	}
	return kr.entries[match].key, authOK
}

// ParseKeyfile reads the campaignd keyfile: a JSON array of Key objects,
//
//	[
//	  {"key": "s3cret", "tenant": "team-a"},
//	  {"key": "old-s3cret", "tenant": "team-a", "disabled": true},
//	  {"key": "b-key", "tenant": "team-b", "rate_limit": 2, "rate_burst": 4, "max_streams": 8}
//	]
//
// Validation happens in NewKeyring; this only decodes, rejecting trailing
// data so a truncated or concatenated file cannot half-load.
func ParseKeyfile(r io.Reader) ([]Key, error) {
	dec := json.NewDecoder(r)
	var keys []Key
	if err := dec.Decode(&keys); err != nil {
		return nil, fmt.Errorf("serve: keyfile: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, errors.New("serve: keyfile: trailing data after key array")
	}
	return keys, nil
}

// ParseInlineKeys parses the campaignd -auth-keys flag form: comma-
// separated secret=tenant pairs (no per-tenant overrides — use the
// keyfile for those).
func ParseInlineKeys(s string) ([]Key, error) {
	var keys []Key
	for _, pair := range strings.Split(s, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		secret, tenant, ok := strings.Cut(pair, "=")
		if !ok || secret == "" || tenant == "" {
			return nil, fmt.Errorf("serve: bad inline key %q (want secret=tenant)", pair)
		}
		keys = append(keys, Key{Secret: secret, Tenant: tenant})
	}
	if len(keys) == 0 {
		return nil, errors.New("serve: no keys in inline key list")
	}
	return keys, nil
}

// SetKeys swaps the keyring: campaignd calls this on SIGHUP so key
// rotation and tenant-limit changes land without a restart. In-flight
// requests finish under the ring they authenticated against; new requests
// see the new ring immediately. nil disables auth (back to anonymous
// mode); a non-nil set must compile (see NewKeyring) or the old ring
// stays installed.
func (s *Server) SetKeys(keys []Key) error {
	if keys == nil {
		s.keys.Store(nil)
		s.logger.Info("auth disabled", "reason", "keyring cleared")
		return nil
	}
	kr, err := NewKeyring(keys)
	if err != nil {
		return err
	}
	s.keys.Store(kr)
	s.logger.Info("keyring installed", "keys", len(keys), "tenants", len(kr.Tenants()))
	return nil
}

// AuthEnabled reports whether a keyring is installed.
func (s *Server) AuthEnabled() bool { return s.keys.Load() != nil }

// tenantCtxKey carries the authenticated Key through the request context.
type tenantCtxKey struct{}

// keyOf returns the request's authenticated Key (zero value in anonymous
// mode: empty tenant, no overrides).
func keyOf(r *http.Request) Key {
	k, _ := r.Context().Value(tenantCtxKey{}).(Key)
	return k
}

// presentedKey extracts the bearer secret from a request: the
// "Authorization: Bearer <key>" header, or X-API-Key for clients that
// cannot set Authorization.
func presentedKey(r *http.Request) string {
	if h := r.Header.Get("Authorization"); h != "" {
		if secret, ok := cutPrefixFold(h, "Bearer "); ok {
			return strings.TrimSpace(secret)
		}
		return "" // a non-Bearer Authorization scheme is "no key", not a key
	}
	return r.Header.Get("X-API-Key")
}

// cutPrefixFold is strings.CutPrefix with an ASCII-case-insensitive
// scheme match ("bearer x" is as valid as "Bearer x").
func cutPrefixFold(s, prefix string) (string, bool) {
	if len(s) < len(prefix) || !strings.EqualFold(s[:len(prefix)], prefix) {
		return s, false
	}
	return s[len(prefix):], true
}

var (
	errAuthMissing  = errors.New("serve: missing API key (Authorization: Bearer or X-API-Key)")
	errAuthUnknown  = errors.New("serve: unknown API key")
	errAuthDisabled = errors.New("serve: API key disabled")
)

// authed gates a campaign-API handler behind the keyring. Anonymous mode
// (no keyring) passes straight through with the zero Key. Failures are
// counted per reason in serve_auth_failures_total and logged with the
// remote address — the operator's first question about a 401 spike is
// always "from where".
//
// The ops surface (/healthz, /metrics, /stats, /version) deliberately
// stays outside this gate: probes and scrapers predate any keyfile, and
// locking a fleet's monitoring out of a misconfigured daemon would turn
// every auth incident into an observability incident too.
func (s *Server) authed(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		kr := s.keys.Load()
		if kr == nil {
			h(w, r)
			return
		}
		secret := presentedKey(r)
		if secret == "" {
			s.rejectAuth(w, r, "missing", http.StatusUnauthorized, errAuthMissing)
			return
		}
		key, res := kr.lookup(secret)
		switch res {
		case authUnknown:
			s.rejectAuth(w, r, "unknown", http.StatusForbidden, errAuthUnknown)
			return
		case authDisabled:
			s.rejectAuth(w, r, "disabled", http.StatusForbidden, errAuthDisabled)
			return
		}
		h(w, r.WithContext(context.WithValue(r.Context(), tenantCtxKey{}, key)))
	}
}

// rejectAuth writes an auth failure and accounts for it.
func (s *Server) rejectAuth(w http.ResponseWriter, r *http.Request, reason string, status int, err error) {
	s.authFailures.Add(1)
	mAuthFailures.With(reason).Inc()
	if status == http.StatusUnauthorized {
		w.Header().Set("WWW-Authenticate", `Bearer realm="campaignd"`)
	}
	s.logger.Warn("auth failed",
		"reason", reason, "path", r.URL.Path, "remote", r.RemoteAddr)
	s.writeError(w, r, status, err)
}
