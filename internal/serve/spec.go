package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/silicon"
	"repro/internal/workloads"
	"repro/internal/xgene"
)

// Strategies a spec can request.
const (
	// StrategyExhaustive walks the explicit VoltagesMV grid uniformly —
	// campaign.RunGrid, the default.
	StrategyExhaustive = "exhaustive"
	// StrategyAdaptive runs the coarse-to-fine Vmin scheduler
	// (campaign.RunSchedule): descend from StartMV toward FloorMV, bracket
	// the failure transition with CoarseStepMV strides, then bisect to
	// ResolutionMV.
	StrategyAdaptive = "adaptive"
)

// Spec is the wire form of a characterization submission: which board(s) to
// fabricate, which cells to run (or which Vmin search to schedule), and how
// hard to parallelize. It maps one-to-one onto campaign.Grid or
// campaign.Schedule plus campaign.Config, so anything the daemon measures
// can be reproduced offline with the same spec.
//
// Validation here is about shape (names resolve, the grid is non-empty,
// strategy-specific fields appear only under their strategy); physical
// validity of the resulting setups is the framework's job at run time, so a
// submission with, say, a non-positive voltage is accepted, scheduled, and
// fails as a campaign — the same way a bad setup fails on the bench.
type Spec struct {
	// Name labels the grid. It prefixes shard names and therefore keys the
	// derived run seeds: two specs that differ only in Name are distinct
	// characterizations. Defaults to "grid".
	Name string `json:"name,omitempty"`
	// Corner picks the chip's process corner: TTT (default), TFF or TSS.
	Corner string `json:"corner,omitempty"`
	// BoardSeed overrides the board fabrication seed; zero means "the
	// campaign seed", as everywhere in the campaign engine.
	BoardSeed uint64 `json:"board_seed,omitempty"`
	// Seed is the campaign seed. Required nonzero (campaign.Config.Validate).
	Seed uint64 `json:"seed"`
	// Core places the benchmark: "robust" (default), "weakest", or an
	// explicit "pmdP.cC" id. Resolved against the spec's board, which is a
	// pure function of (corner, board seed), so the placement is as
	// deterministic as everything else in the fingerprint.
	Core string `json:"core,omitempty"`
	// Benches are workload profile names (see internal/workloads).
	Benches []string `json:"benches"`
	// VoltagesMV spans the setup axis: one nominal-clock setup per PMD
	// voltage, in millivolts.
	VoltagesMV []float64 `json:"voltages_mv"`
	// TREFPMillis overrides the DRAM refresh period (milliseconds); zero
	// means the nominal 64 ms.
	TREFPMillis float64 `json:"trefp_ms,omitempty"`
	// Repetitions per grid cell / voltage level (the paper runs ten).
	Repetitions int `json:"repetitions"`
	// Strategy selects the scheduler: "exhaustive" (default) or
	// "adaptive". Exhaustive specs span the setup axis with VoltagesMV;
	// adaptive specs span it with StartMV..FloorMV instead and must leave
	// VoltagesMV empty (and vice versa), so two specs that request the
	// same work are never spelled two ways.
	Strategy string `json:"strategy,omitempty"`
	// Boards is the fleet size per cell/search: each shard batches this
	// many distinct-seed boards of the spec's corner (board 0 keeps the
	// board seed; see campaign.FleetBoardSeed). Zero means 1.
	Boards int `json:"boards,omitempty"`
	// StartMV is the adaptive descent start voltage (millivolts); zero
	// means nominal. Adaptive-only.
	StartMV float64 `json:"start_mv,omitempty"`
	// FloorMV stops the adaptive descent; zero means 700. Adaptive-only.
	FloorMV float64 `json:"floor_mv,omitempty"`
	// CoarseStepMV is the adaptive coarse-pass stride; zero means 40. Must
	// be an integer multiple of ResolutionMV. Adaptive-only.
	CoarseStepMV float64 `json:"coarse_step_mv,omitempty"`
	// ResolutionMV is the adaptive final resolution; zero means the
	// paper's 5. Adaptive-only.
	ResolutionMV float64 `json:"resolution_mv,omitempty"`
	// MaxRuns bounds executed runs per (benchmark, board) search; zero
	// means unbounded. Adaptive-only.
	MaxRuns int `json:"max_runs,omitempty"`
	// CrossSeed seeds each fleet board's coarse pass from its sibling's
	// already-found Vmin (campaign.Schedule.CrossSeed): same SafeVmin
	// whenever the failure transition is monotone (the physical
	// expectation, pinned per corner by the golden tests), fewer coarse
	// levels executed. The executed run set (and so the record stream)
	// differs, which is why it is part of the fingerprint. Adaptive-only,
	// and requires Boards > 1 — on a single board it would be a no-op
	// spelling that still split the cache key.
	CrossSeed bool `json:"cross_seed,omitempty"`
	// Workers is the campaign worker count (0 = one per CPU). Excluded
	// from the fingerprint: the engine's determinism contract guarantees
	// the worker count never changes results, so two submissions differing
	// only in Workers are the same characterization.
	Workers int `json:"workers,omitempty"`
}

// withDefaults fills the documented defaults.
func (s Spec) withDefaults() Spec {
	if s.Name == "" {
		s.Name = "grid"
	}
	if s.Corner == "" {
		s.Corner = silicon.TTT.String()
	}
	if s.Core == "" {
		s.Core = "robust"
	}
	if s.Strategy == "" {
		s.Strategy = StrategyExhaustive
	}
	if s.Strategy == StrategyAdaptive {
		if s.StartMV == 0 {
			s.StartMV = silicon.NominalVoltage * 1000
		}
		if s.FloorMV == 0 {
			s.FloorMV = 700
		}
		if s.CoarseStepMV == 0 {
			s.CoarseStepMV = 40
		}
		if s.ResolutionMV == 0 {
			s.ResolutionMV = 5
		}
	}
	return s
}

// corner resolves the Corner field.
func (s Spec) corner() (silicon.Corner, error) {
	for _, c := range silicon.Corners() {
		if c.String() == s.Corner {
			return c, nil
		}
	}
	return 0, fmt.Errorf("serve: unknown corner %q (TTT, TFF or TSS)", s.Corner)
}

// Validate reports shape errors in the spec. Call on the defaulted spec;
// the Server defaults-then-validates every submission.
func (s Spec) Validate() error {
	if err := (campaign.Config{Seed: s.Seed}).Validate(); err != nil {
		return err
	}
	if _, err := s.corner(); err != nil {
		return err
	}
	if len(s.Benches) == 0 {
		return errors.New("serve: spec needs at least one benchmark")
	}
	for _, name := range s.Benches {
		if _, err := workloads.ByName(name); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	switch s.Strategy {
	case "", StrategyExhaustive:
		if len(s.VoltagesMV) == 0 {
			return errors.New("serve: spec needs at least one voltage")
		}
		// One spelling per characterization: adaptive knobs on an
		// exhaustive spec would be dead weight that still changed the
		// fingerprint, so they are rejected outright.
		if s.StartMV != 0 || s.FloorMV != 0 || s.CoarseStepMV != 0 || s.ResolutionMV != 0 || s.MaxRuns != 0 || s.CrossSeed {
			return errors.New("serve: start_mv/floor_mv/coarse_step_mv/resolution_mv/max_runs/cross_seed are adaptive-only")
		}
	case StrategyAdaptive:
		if len(s.VoltagesMV) != 0 {
			return errors.New("serve: voltages_mv is exhaustive-only; adaptive specs span start_mv..floor_mv")
		}
		if s.ResolutionMV <= 0 {
			return errors.New("serve: adaptive resolution must be positive")
		}
		if s.CoarseStepMV < s.ResolutionMV {
			return errors.New("serve: coarse step must be at least the resolution")
		}
		if m := int(s.CoarseStepMV/s.ResolutionMV + 0.5); !nearlyEqualMV(float64(m)*s.ResolutionMV, s.CoarseStepMV) {
			return fmt.Errorf("serve: coarse step %g mV is not an integer multiple of resolution %g mV", s.CoarseStepMV, s.ResolutionMV)
		}
		if s.FloorMV <= 0 || s.FloorMV >= s.StartMV {
			return errors.New("serve: adaptive floor must sit below the start voltage")
		}
		if s.MaxRuns < 0 {
			return errors.New("serve: negative run budget")
		}
		// cross_seed with no sibling boards is a semantic no-op that would
		// still split the cache key — same "one spelling per
		// characterization" rule as the strategy-exclusive fields.
		if s.CrossSeed && s.Boards <= 1 {
			return errors.New("serve: cross_seed needs a fleet (boards > 1)")
		}
	default:
		return fmt.Errorf("serve: unknown strategy %q (exhaustive or adaptive)", s.Strategy)
	}
	if s.Boards < 0 {
		return errors.New("serve: negative board count")
	}
	if s.Repetitions <= 0 {
		return errors.New("serve: repetitions must be positive")
	}
	if s.TREFPMillis < 0 {
		return errors.New("serve: negative TREFP")
	}
	switch s.Core {
	case "robust", "weakest":
	default:
		var p, c int
		// Sscanf ignores trailing text, so round-trip the parse to reject
		// selectors like "pmd1.c2,junk" outright.
		n, err := fmt.Sscanf(s.Core, "pmd%d.c%d", &p, &c)
		if n != 2 || err != nil || fmt.Sprintf("pmd%d.c%d", p, c) != s.Core {
			return fmt.Errorf("serve: bad core selector %q (robust, weakest or pmdP.cC)", s.Core)
		}
		if !(silicon.CoreID{PMD: p, Core: c}).Valid() {
			return fmt.Errorf("serve: core %s out of range", s.Core)
		}
	}
	return nil
}

// nearlyEqualMV absorbs float drift on the millivolt grid.
func nearlyEqualMV(a, b float64) bool { d := a - b; return d < 1e-6 && d > -1e-6 }

// Fingerprint is the characterization cache key: a stable hash of every
// spec field that can change results — name, corner, board seed, campaign
// seed, core placement, refresh period, benches, repetitions, strategy,
// fleet size, and the strategy's own axis (voltages for exhaustive, the
// descent parameters for adaptive). Workers is deliberately excluded (see
// the field doc): the cache treats any worker count as the same campaign.
// Semantically identical spellings hash identically (defaults applied,
// board seed 0 resolved, boards 0 == 1); an exhaustive and an adaptive
// submission can never collide because the strategy itself is hashed.
func (s Spec) Fingerprint() string {
	s = s.withDefaults()
	// BoardSeed 0 means "the campaign seed" (resolved in Grid), so the
	// explicit and implicit spellings of the same board hash identically.
	if s.BoardSeed == 0 {
		s.BoardSeed = s.Seed
	}
	if s.Boards == 0 {
		s.Boards = 1
	}
	h := sha256.New()
	// Free-form strings (name, bench names) are length-prefixed and the
	// lists are count-prefixed, so the hash input parses unambiguously: no
	// crafted name or bench string can impersonate another spec's field or
	// list boundary.
	fmt.Fprintf(h, "%d:%s\x00%s\x00%d\x00%d\x00%s\x00%g\x00%d\x00%s\x00%d\x00",
		len(s.Name), s.Name, s.Corner, s.BoardSeed, s.Seed, s.Core, s.TREFPMillis,
		s.Repetitions, s.Strategy, s.Boards)
	fmt.Fprintf(h, "nb:%d\x00", len(s.Benches))
	for _, b := range s.Benches {
		fmt.Fprintf(h, "b:%d:%s\x00", len(b), b)
	}
	fmt.Fprintf(h, "nv:%d\x00", len(s.VoltagesMV))
	for _, v := range s.VoltagesMV {
		fmt.Fprintf(h, "v:%g\x00", v)
	}
	if s.Strategy == StrategyAdaptive {
		fmt.Fprintf(h, "a:%g\x00%g\x00%g\x00%g\x00%d\x00%t\x00",
			s.StartMV, s.FloorMV, s.CoarseStepMV, s.ResolutionMV, s.MaxRuns, s.CrossSeed)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// resolve validates the defaulted spec and materializes its common parts:
// the corner, the placed core, and the benchmark profiles. The core is
// resolved on a probe board — fabrication is a pure function of (corner,
// seed), so the id resolved here is the id every shard sees.
func (s Spec) resolve() (silicon.Corner, silicon.CoreID, []workloads.Profile, error) {
	if err := s.Validate(); err != nil {
		return 0, silicon.CoreID{}, nil, err
	}
	corner, err := s.corner()
	if err != nil {
		return 0, silicon.CoreID{}, nil, err
	}
	benches := make([]workloads.Profile, 0, len(s.Benches))
	for _, name := range s.Benches {
		p, err := workloads.ByName(name)
		if err != nil {
			return 0, silicon.CoreID{}, nil, fmt.Errorf("serve: %w", err)
		}
		benches = append(benches, p)
	}
	boardSeed := s.BoardSeed
	if boardSeed == 0 {
		boardSeed = s.Seed
	}
	probe, err := xgene.NewServer(xgene.Options{Corner: corner, Seed: boardSeed})
	if err != nil {
		return 0, silicon.CoreID{}, nil, fmt.Errorf("serve: probe board: %w", err)
	}
	var coreID silicon.CoreID
	switch s.Core {
	case "robust":
		coreID = probe.Chip().MostRobustCore()
	case "weakest":
		coreID = probe.Chip().WeakestCore()
	default:
		fmt.Sscanf(s.Core, "pmd%d.c%d", &coreID.PMD, &coreID.Core)
	}
	return corner, coreID, benches, nil
}

// setup builds the spec's base operating point on the resolved core.
func (s Spec) setup(coreID silicon.CoreID) core.Setup {
	setup := core.NominalSetup(coreID)
	if s.TREFPMillis > 0 {
		setup.TREFP = time.Duration(s.TREFPMillis * float64(time.Millisecond))
	}
	return setup
}

// Grid materializes an exhaustive spec into the campaign engine's grid
// form, applying defaults first. The daemon runs exactly this grid; offline
// reproduction is campaign.RunGrid(campaign.Config{Seed: spec.Seed},
// grid) with any worker count.
func (s Spec) Grid() (campaign.Grid, error) {
	s = s.withDefaults()
	if s.Strategy != StrategyExhaustive {
		return campaign.Grid{}, fmt.Errorf("serve: Grid on a %q spec (use Schedule)", s.Strategy)
	}
	corner, coreID, benches, err := s.resolve()
	if err != nil {
		return campaign.Grid{}, err
	}
	setups := make([]core.Setup, 0, len(s.VoltagesMV))
	for _, mv := range s.VoltagesMV {
		setup := s.setup(coreID)
		setup.PMDVoltage = mv / 1000
		setups = append(setups, setup)
	}
	return campaign.Grid{
		Name:        s.Name,
		Board:       campaign.Board{Corner: corner, Seed: s.BoardSeed},
		Benches:     benches,
		Setups:      setups,
		Repetitions: s.Repetitions,
		Boards:      s.Boards,
	}, nil
}

// Schedule materializes an adaptive spec into the campaign engine's
// schedule form, applying defaults first. Offline reproduction is
// campaign.RunSchedule(campaign.Config{Seed: spec.Seed}, schedule) with any
// worker count.
func (s Spec) Schedule() (campaign.Schedule, error) {
	s = s.withDefaults()
	if s.Strategy != StrategyAdaptive {
		return campaign.Schedule{}, fmt.Errorf("serve: Schedule on a %q spec (use Grid)", s.Strategy)
	}
	corner, coreID, benches, err := s.resolve()
	if err != nil {
		return campaign.Schedule{}, err
	}
	setup := s.setup(coreID)
	setup.PMDVoltage = s.StartMV / 1000
	return campaign.Schedule{
		Name:        s.Name,
		Board:       campaign.Board{Corner: corner, Seed: s.BoardSeed},
		Boards:      s.Boards,
		Benches:     benches,
		Setup:       setup,
		FloorV:      s.FloorMV / 1000,
		CoarseStepV: s.CoarseStepMV / 1000,
		ResolutionV: s.ResolutionMV / 1000,
		Repetitions: s.Repetitions,
		MaxRuns:     s.MaxRuns,
		CrossSeed:   s.CrossSeed,
	}, nil
}
