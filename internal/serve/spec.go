package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/silicon"
	"repro/internal/workloads"
	"repro/internal/xgene"
)

// Spec is the wire form of a characterization grid submission: which board
// to fabricate, which cells to run, and how hard to parallelize. It maps
// one-to-one onto campaign.Grid + campaign.Config, so anything the daemon
// measures can be reproduced offline with the same spec.
//
// Validation here is about shape (names resolve, the grid is non-empty);
// physical validity of the resulting setups is the framework's job at run
// time, so a submission with, say, a non-positive voltage is accepted,
// scheduled, and fails as a campaign — the same way a bad setup fails on
// the bench.
type Spec struct {
	// Name labels the grid. It prefixes shard names and therefore keys the
	// derived run seeds: two specs that differ only in Name are distinct
	// characterizations. Defaults to "grid".
	Name string `json:"name,omitempty"`
	// Corner picks the chip's process corner: TTT (default), TFF or TSS.
	Corner string `json:"corner,omitempty"`
	// BoardSeed overrides the board fabrication seed; zero means "the
	// campaign seed", as everywhere in the campaign engine.
	BoardSeed uint64 `json:"board_seed,omitempty"`
	// Seed is the campaign seed. Required nonzero (campaign.Config.Validate).
	Seed uint64 `json:"seed"`
	// Core places the benchmark: "robust" (default), "weakest", or an
	// explicit "pmdP.cC" id. Resolved against the spec's board, which is a
	// pure function of (corner, board seed), so the placement is as
	// deterministic as everything else in the fingerprint.
	Core string `json:"core,omitempty"`
	// Benches are workload profile names (see internal/workloads).
	Benches []string `json:"benches"`
	// VoltagesMV spans the setup axis: one nominal-clock setup per PMD
	// voltage, in millivolts.
	VoltagesMV []float64 `json:"voltages_mv"`
	// TREFPMillis overrides the DRAM refresh period (milliseconds); zero
	// means the nominal 64 ms.
	TREFPMillis float64 `json:"trefp_ms,omitempty"`
	// Repetitions per grid cell (the paper runs ten).
	Repetitions int `json:"repetitions"`
	// Workers is the campaign worker count (0 = one per CPU). Excluded
	// from the fingerprint: the engine's determinism contract guarantees
	// the worker count never changes results, so two submissions differing
	// only in Workers are the same characterization.
	Workers int `json:"workers,omitempty"`
}

// withDefaults fills the documented defaults.
func (s Spec) withDefaults() Spec {
	if s.Name == "" {
		s.Name = "grid"
	}
	if s.Corner == "" {
		s.Corner = silicon.TTT.String()
	}
	if s.Core == "" {
		s.Core = "robust"
	}
	return s
}

// corner resolves the Corner field.
func (s Spec) corner() (silicon.Corner, error) {
	for _, c := range silicon.Corners() {
		if c.String() == s.Corner {
			return c, nil
		}
	}
	return 0, fmt.Errorf("serve: unknown corner %q (TTT, TFF or TSS)", s.Corner)
}

// Validate reports shape errors in the spec. Call on the defaulted spec;
// the Server defaults-then-validates every submission.
func (s Spec) Validate() error {
	if err := (campaign.Config{Seed: s.Seed}).Validate(); err != nil {
		return err
	}
	if _, err := s.corner(); err != nil {
		return err
	}
	if len(s.Benches) == 0 {
		return errors.New("serve: spec needs at least one benchmark")
	}
	for _, name := range s.Benches {
		if _, err := workloads.ByName(name); err != nil {
			return fmt.Errorf("serve: %w", err)
		}
	}
	if len(s.VoltagesMV) == 0 {
		return errors.New("serve: spec needs at least one voltage")
	}
	if s.Repetitions <= 0 {
		return errors.New("serve: repetitions must be positive")
	}
	if s.TREFPMillis < 0 {
		return errors.New("serve: negative TREFP")
	}
	switch s.Core {
	case "robust", "weakest":
	default:
		var p, c int
		// Sscanf ignores trailing text, so round-trip the parse to reject
		// selectors like "pmd1.c2,junk" outright.
		n, err := fmt.Sscanf(s.Core, "pmd%d.c%d", &p, &c)
		if n != 2 || err != nil || fmt.Sprintf("pmd%d.c%d", p, c) != s.Core {
			return fmt.Errorf("serve: bad core selector %q (robust, weakest or pmdP.cC)", s.Core)
		}
		if !(silicon.CoreID{PMD: p, Core: c}).Valid() {
			return fmt.Errorf("serve: core %s out of range", s.Core)
		}
	}
	return nil
}

// Fingerprint is the characterization cache key: a stable hash of every
// spec field that can change results — name, corner, board seed, campaign
// seed, core placement, refresh period, benches, voltages, repetitions.
// Workers is deliberately excluded (see the field doc): the cache treats
// any worker count as the same campaign.
func (s Spec) Fingerprint() string {
	s = s.withDefaults()
	// BoardSeed 0 means "the campaign seed" (resolved in Grid), so the
	// explicit and implicit spellings of the same board hash identically.
	if s.BoardSeed == 0 {
		s.BoardSeed = s.Seed
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00%d\x00%d\x00%s\x00%g\x00%d\x00",
		s.Name, s.Corner, s.BoardSeed, s.Seed, s.Core, s.TREFPMillis, s.Repetitions)
	for _, b := range s.Benches {
		fmt.Fprintf(h, "b:%s\x00", b)
	}
	for _, v := range s.VoltagesMV {
		fmt.Fprintf(h, "v:%g\x00", v)
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Grid materializes the spec into the campaign engine's grid form,
// applying defaults first. The daemon runs exactly this grid; offline
// reproduction is campaign.RunGrid(campaign.Config{Seed: spec.Seed},
// grid) with any worker count.
func (s Spec) Grid() (campaign.Grid, error) {
	s = s.withDefaults()
	if err := s.Validate(); err != nil {
		return campaign.Grid{}, err
	}
	corner, err := s.corner()
	if err != nil {
		return campaign.Grid{}, err
	}

	benches := make([]workloads.Profile, 0, len(s.Benches))
	for _, name := range s.Benches {
		p, err := workloads.ByName(name)
		if err != nil {
			return campaign.Grid{}, fmt.Errorf("serve: %w", err)
		}
		benches = append(benches, p)
	}

	// Resolve the core on a probe board: fabrication is a pure function of
	// (corner, seed), so the id resolved here is the id every shard sees.
	boardSeed := s.BoardSeed
	if boardSeed == 0 {
		boardSeed = s.Seed
	}
	probe, err := xgene.NewServer(xgene.Options{Corner: corner, Seed: boardSeed})
	if err != nil {
		return campaign.Grid{}, fmt.Errorf("serve: probe board: %w", err)
	}
	var coreID silicon.CoreID
	switch s.Core {
	case "robust":
		coreID = probe.Chip().MostRobustCore()
	case "weakest":
		coreID = probe.Chip().WeakestCore()
	default:
		fmt.Sscanf(s.Core, "pmd%d.c%d", &coreID.PMD, &coreID.Core)
	}

	setups := make([]core.Setup, 0, len(s.VoltagesMV))
	for _, mv := range s.VoltagesMV {
		setup := core.NominalSetup(coreID)
		setup.PMDVoltage = mv / 1000
		if s.TREFPMillis > 0 {
			setup.TREFP = time.Duration(s.TREFPMillis * float64(time.Millisecond))
		}
		setups = append(setups, setup)
	}

	return campaign.Grid{
		Name:        s.Name,
		Board:       campaign.Board{Corner: corner, Seed: s.BoardSeed},
		Benches:     benches,
		Setups:      setups,
		Repetitions: s.Repetitions,
	}, nil
}
