package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/store"
)

// storeServer boots a server over a store directory.
func storeServer(t *testing.T, dir string, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	opts.StoreDir = dir
	return newTestServer(t, opts)
}

// serverStats fetches GET /stats.
func serverStats(t *testing.T, ts *httptest.Server) statsResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	return stats
}

// TestRestartReplay is the tentpole acceptance test: a daemon restarted on
// the same store directory answers a previously characterized submission
// from disk — byte-identical stream, zero grids run.
func TestRestartReplay(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(4)

	// First life: run the grid, let the store commit it.
	s1, ts1 := storeServer(t, dir, Options{})
	first := submit(t, ts1, spec, http.StatusAccepted)
	liveStream := streamBytes(t, ts1, first.ID)
	if len(liveStream) == 0 {
		t.Fatal("live stream is empty")
	}
	st := serverStats(t, ts1)
	if st.Store == nil || st.Store.Segments != 1 || st.Store.Bytes == 0 {
		t.Fatalf("store stats after first run = %+v", st.Store)
	}
	ts1.Close()
	s1.Close()

	// Second life: same directory, fresh process state.
	s2, ts2 := storeServer(t, dir, Options{})
	// The registry warm-loaded the manifest: the campaign is listed as
	// done and stored before anyone resubmits.
	resp, err := http.Get(ts2.URL + "/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	var views []View
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(views) != 1 || views[0].Status != StatusDone || !views[0].Stored {
		t.Fatalf("warm-loaded registry = %+v", views)
	}
	if views[0].Records == 0 || views[0].Runs == 0 {
		t.Errorf("warm-loaded view lost its bookkeeping: %+v", views[0])
	}

	// Resubmission: a cache hit served from disk, grid not re-run.
	second := submit(t, ts2, spec, http.StatusOK)
	if !second.Cached {
		t.Fatal("restarted daemon re-ran a stored characterization")
	}
	if got := streamBytes(t, ts2, second.ID); !bytes.Equal(got, liveStream) {
		t.Error("replayed stream differs from the original live stream")
	}
	st = serverStats(t, ts2)
	if st.GridsRun != 0 {
		t.Errorf("grids run after restart = %d, want 0", st.GridsRun)
	}
	if st.Store == nil || st.Store.ReplayHits != 1 {
		t.Errorf("store stats after replay = %+v, want 1 replay hit", st.Store)
	}
	ts2.Close()
	s2.Close()
}

// TestRestartStreamWithoutResubmit covers the other replay door: streaming
// a warm-loaded campaign id directly hydrates from disk too.
func TestRestartStreamWithoutResubmit(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(2)
	s1, ts1 := storeServer(t, dir, Options{})
	first := submit(t, ts1, spec, http.StatusAccepted)
	liveStream := streamBytes(t, ts1, first.ID)
	ts1.Close()
	s1.Close()

	s2, ts2 := storeServer(t, dir, Options{})
	defer func() { ts2.Close(); s2.Close() }()
	resp, err := http.Get(ts2.URL + "/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	var views []View
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(views) != 1 {
		t.Fatalf("registry = %+v", views)
	}
	// Status polls stay cheap: GET by id must not page the segment into
	// memory — only streaming (below) and submission hits hydrate.
	vr, err := http.Get(ts2.URL + "/campaigns/" + views[0].ID)
	if err != nil {
		t.Fatal(err)
	}
	var v View
	if err := json.NewDecoder(vr.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	vr.Body.Close()
	if v.Records == 0 {
		t.Error("status poll lost the on-disk record count")
	}
	if c := s2.lookup(views[0].ID); !c.needsHydration() {
		t.Error("status poll hydrated the campaign")
	}
	if got := streamBytes(t, ts2, views[0].ID); !bytes.Equal(got, liveStream) {
		t.Error("warm-id stream differs from the original live stream")
	}
	if c := s2.lookup(views[0].ID); c.needsHydration() {
		t.Error("stream did not hydrate the campaign")
	}
	if st := serverStats(t, ts2); st.GridsRun != 0 {
		t.Errorf("streaming a stored campaign ran %d grids", st.GridsRun)
	}
}

// TestCrashRecoveryRerun is the damage acceptance test: a store directory
// with a truncated final segment recovers on boot — the intact campaign
// replays, the damaged one is quarantined and re-runs cleanly.
func TestCrashRecoveryRerun(t *testing.T) {
	dir := t.TempDir()
	intact := testSpec(2)
	damaged := testSpec(2)
	damaged.Seed = 8

	s1, ts1 := storeServer(t, dir, Options{})
	okSub := submit(t, ts1, intact, http.StatusAccepted)
	okStream := streamBytes(t, ts1, okSub.ID)
	badSub := submit(t, ts1, damaged, http.StatusAccepted)
	badStream := streamBytes(t, ts1, badSub.ID)
	ts1.Close()
	s1.Close()

	// Tear the damaged spec's segment mid-record (mid final line).
	seg := filepath.Join(dir, "seg-"+badSub.Fingerprint+".jsonl")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(seg, data[:len(data)-11], 0o644); err != nil {
		t.Fatal(err)
	}

	s2, ts2 := storeServer(t, dir, Options{})
	defer func() { ts2.Close(); s2.Close() }()

	// The intact campaign replays from disk.
	okAgain := submit(t, ts2, intact, http.StatusOK)
	if !okAgain.Cached {
		t.Error("intact campaign not served from disk after recovery")
	}
	if got := streamBytes(t, ts2, okAgain.ID); !bytes.Equal(got, okStream) {
		t.Error("intact replay differs from its original stream")
	}
	// The damaged one was quarantined: it re-runs and still converges on
	// the same deterministic stream.
	badAgain := submit(t, ts2, damaged, http.StatusAccepted)
	if badAgain.Cached {
		t.Fatal("truncated segment served as a cache hit")
	}
	if got := streamBytes(t, ts2, badAgain.ID); !bytes.Equal(got, badStream) {
		t.Error("re-run of the damaged campaign diverged from its original stream")
	}
	st := serverStats(t, ts2)
	if st.GridsRun != 1 {
		t.Errorf("grids run after recovery = %d, want 1 (damaged only)", st.GridsRun)
	}
	if st.Store == nil || st.Store.Quarantined != 1 {
		t.Errorf("store stats after recovery = %+v, want 1 quarantined", st.Store)
	}
	// The clean re-run recommitted its segment.
	if st.Store.Segments != 2 {
		t.Errorf("segments after re-run = %d, want 2", st.Store.Segments)
	}
}

// TestEvictionReloadsFromDisk pins the evicted-then-resubmitted flow: with
// the store enabled, LRU eviction only drops the memory buffer — the
// fingerprint replays from its segment instead of re-running.
func TestEvictionReloadsFromDisk(t *testing.T) {
	dir := t.TempDir()
	s, ts := storeServer(t, dir, Options{CacheMax: 1})
	defer func() { ts.Close() }()

	a := testSpec(2)
	b := testSpec(2)
	b.Seed = 9
	aSub := submit(t, ts, a, http.StatusAccepted)
	aStream := streamBytes(t, ts, aSub.ID)
	bSub := submit(t, ts, b, http.StatusAccepted)
	streamBytes(t, ts, bSub.ID) // drains; admitting b evicted a

	s.mu.Lock()
	evictions := s.evictions
	s.mu.Unlock()
	if evictions == 0 {
		t.Fatal("CacheMax 1 evicted nothing")
	}

	aAgain := submit(t, ts, a, http.StatusOK)
	if !aAgain.Cached {
		t.Fatal("evicted fingerprint re-ran despite the store")
	}
	if aAgain.ID == aSub.ID {
		t.Error("evicted campaign kept its id; expected a fresh adoption")
	}
	if got := streamBytes(t, ts, aAgain.ID); !bytes.Equal(got, aStream) {
		t.Error("post-eviction replay differs from the original stream")
	}
	st := serverStats(t, ts)
	if st.GridsRun != 2 {
		t.Errorf("grids run = %d, want 2 (eviction must not force a re-run)", st.GridsRun)
	}
	if st.Store == nil || st.Store.ReplayHits != 1 {
		t.Errorf("store stats = %+v, want 1 replay hit", st.Store)
	}
	s.Close()
}

// TestFailedCampaignNotPersisted: only complete, successful streams become
// segments.
func TestFailedCampaignNotPersisted(t *testing.T) {
	dir := t.TempDir()
	s, ts := storeServer(t, dir, Options{})
	defer func() { ts.Close(); s.Close() }()
	bad := Spec{Seed: 9, Benches: []string{"mcf"}, VoltagesMV: []float64{-5}, Repetitions: 1}
	sr := submit(t, ts, bad, http.StatusAccepted)
	streamBytes(t, ts, sr.ID)
	if st := serverStats(t, ts); st.Store == nil || st.Store.Segments != 0 {
		t.Errorf("failed campaign persisted: %+v", st.Store)
	}
}

// TestStoreCompactionBound wires Options.StoreMaxSegments through: the
// store keeps only the newest segments, and a compacted fingerprint
// re-runs (no manifest entry left to replay).
func TestStoreCompactionBound(t *testing.T) {
	dir := t.TempDir()
	s, ts := storeServer(t, dir, Options{StoreMaxSegments: 1})
	defer func() { ts.Close() }()
	a := testSpec(2)
	b := testSpec(2)
	b.Seed = 10
	aSub := submit(t, ts, a, http.StatusAccepted)
	streamBytes(t, ts, aSub.ID)
	bSub := submit(t, ts, b, http.StatusAccepted)
	streamBytes(t, ts, bSub.ID)
	st := serverStats(t, ts)
	if st.Store == nil || st.Store.Segments != 1 || st.Store.Compactions != 1 {
		t.Fatalf("store stats = %+v, want 1 segment after compaction", st.Store)
	}
	s.Close()

	// Only b survived on disk: a re-runs after a restart, b replays.
	s2, ts2 := storeServer(t, dir, Options{StoreMaxSegments: 1})
	defer func() { ts2.Close(); s2.Close() }()
	if again := submit(t, ts2, b, http.StatusOK); !again.Cached {
		t.Error("surviving segment did not replay")
	}
	if again := submit(t, ts2, a, http.StatusAccepted); again.Cached {
		t.Error("compacted segment claimed a cache hit")
	}
}

// TestDrain covers graceful shutdown: draining rejects new submissions
// with 503 while letting the in-flight campaign finish and commit.
func TestDrain(t *testing.T) {
	dir := t.TempDir()
	s, ts := storeServer(t, dir, Options{})
	defer func() { ts.Close(); s.Close() }()

	spec := testSpec(2)
	sr := submit(t, ts, spec, http.StatusAccepted)

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Drained means terminal AND committed: the segment is on disk.
	st := serverStats(t, ts)
	if st.Store == nil || st.Store.Segments != 1 {
		t.Errorf("store after drain = %+v, want the finished campaign committed", st.Store)
	}
	if !st.Draining {
		t.Error("stats do not report draining")
	}
	// New submissions are refused, existing streams still replay.
	other := testSpec(2)
	other.Seed = 11
	body, _ := json.Marshal(other)
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submission while draining got %d, want 503", resp.StatusCode)
	}
	if got := streamBytes(t, ts, sr.ID); len(got) == 0 {
		t.Error("stream of a finished campaign broke during drain")
	}
}

// TestStoreOpenFailure: an unusable store directory fails construction
// loudly instead of silently running without durability.
func TestStoreOpenFailure(t *testing.T) {
	file := filepath.Join(t.TempDir(), "not-a-dir")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Options{StoreDir: file}); err == nil {
		t.Fatal("server built over an unusable store directory")
	}
}

// TestMetaRoundTrip pins the manifest summary: spec and bookkeeping
// survive the JSON round trip that adoption performs.
func TestMetaRoundTrip(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(2)
	s1, ts1 := storeServer(t, dir, Options{})
	sr := submit(t, ts1, spec, http.StatusAccepted)
	streamBytes(t, ts1, sr.ID)
	origView := s1.lookup(sr.ID).view()
	ts1.Close()
	s1.Close()

	st, err := store.Open(store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	e, ok := st.Get(sr.Fingerprint)
	if !ok {
		t.Fatal("fingerprint missing from the reopened store")
	}
	var m storedMeta
	if err := json.Unmarshal(e.Meta, &m); err != nil {
		t.Fatal(err)
	}
	if m.Spec.Fingerprint() != sr.Fingerprint {
		t.Error("persisted spec fingerprints differently")
	}
	stats, err := m.campaignStats()
	if err != nil {
		t.Fatal(err)
	}
	if stats.Runs != origView.Runs || stats.Recoveries != origView.Recoveries {
		t.Errorf("restored stats %+v, original view %+v", stats, origView)
	}
	if e.Records != origView.Records {
		t.Errorf("entry records %d, view %d", e.Records, origView.Records)
	}
}
