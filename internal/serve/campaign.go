package serve

import (
	"context"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/wire"
)

// Status is a campaign's lifecycle state in the registry.
type Status string

const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// Campaign is one registry entry: a submitted spec, its lifecycle state,
// and the frame buffer that every stream subscriber replays from. The
// buffer is append-only and retained after completion — that retention IS
// the characterization cache: a cache-hit submission streams the buffered
// frames without touching the engine. Each frame carries its shared
// pre-rendered JSONL line, so replaying to N subscribers writes the same
// immutable bytes N times and encodes them zero times.
type Campaign struct {
	id          string
	spec        Spec
	fingerprint string
	// extra is the server-wide broadcast (spool files, monitoring sinks);
	// it receives every record after the buffer does.
	extra *core.MultiSink

	mu      sync.Mutex
	cond    *sync.Cond
	status  Status
	errMsg  string
	frames  []core.Frame
	stats   campaign.Stats
	workers int

	// fromStore marks a campaign whose records live in the durable store:
	// it was adopted from the manifest (daemon restart, or an evicted
	// fingerprint resubmitted) with metadata only. hydrated flips once the
	// segment has been read back into the buffer; until then records is
	// empty and storedRecords carries the on-disk count for the views.
	fromStore     bool
	hydrated      bool
	storedRecords int

	// traceID follows the campaign through every layer: echoed in the
	// submit response and X-Trace-ID headers (cache hits included),
	// attached to stream metadata and structured log lines. It is set
	// once at admission and immutable after, so readers need no lock.
	traceID string
	// tenant is the authenticated submitter's tenant ID ("" for anonymous
	// or library submissions). Like traceID it is set once at admission
	// and immutable after; it surfaces in View.Tenant and lifecycle logs.
	tenant string
	// queuedAt feeds the queue-wait histogram; written at admission,
	// read once when execution starts.
	queuedAt time.Time

	// lastUsed is the server's LRU clock for this entry; it is read and
	// written only under the Server's mutex, never this Campaign's.
	lastUsed uint64
}

func newCampaign(id string, spec Spec, fingerprint string, extra *core.MultiSink) *Campaign {
	c := &Campaign{
		id:          id,
		spec:        spec,
		fingerprint: fingerprint,
		extra:       extra,
		status:      StatusQueued,
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// newStoredCampaign materializes a registry entry from a durable-store
// manifest line: already done, stats restored, record buffer empty until
// hydration reads the segment back.
func newStoredCampaign(id string, spec Spec, fingerprint string, extra *core.MultiSink,
	stats campaign.Stats, workers, records int) *Campaign {
	c := newCampaign(id, spec, fingerprint, extra)
	c.status = StatusDone
	c.stats = stats
	c.workers = workers
	c.fromStore = true
	c.storedRecords = records
	// The original submission's trace died with the process that ran it;
	// adopted campaigns get a fresh ID so replays are still traceable.
	c.traceID = obs.NewTraceID()
	return c
}

// needsHydration reports whether the record buffer must be read back from
// the store before this campaign can replay a stream.
func (c *Campaign) needsHydration() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fromStore && !c.hydrated && c.status == StatusDone
}

// hydrateWith installs the frames loaded from the store. Safe to race:
// the first load wins, later ones are discarded.
func (c *Campaign) hydrateWith(frames []core.Frame) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.fromStore || c.hydrated || c.status != StatusDone {
		return
	}
	c.frames = frames
	c.hydrated = true
	c.cond.Broadcast()
}

// markLost fails a store-backed campaign whose segment is gone for good
// (quarantined or compacted away): its fingerprint stops being satisfied,
// so a resubmission schedules a clean re-run. Transient load errors must
// NOT come here — the campaign stays done/unhydrated and hydration
// retries.
func (c *Campaign) markLost(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.fromStore || c.hydrated || c.status != StatusDone {
		return
	}
	c.status = StatusFailed
	c.errMsg = err.Error()
	c.cond.Broadcast()
}

// preload seeds the buffer with frames restored from a crash checkpoint,
// before the engine runs the remaining cells. Subscribers (and the spool)
// see the exact pre-rendered bytes the interrupted process streamed,
// followed seamlessly by the live remainder — the restored prefix must NOT
// pass through the engine sink again, which is why campaign.Config.Resume
// suppresses emission for restored cells.
func (c *Campaign) preload(frames []core.Frame) {
	c.mu.Lock()
	c.frames = append(c.frames, frames...)
	c.cond.Broadcast()
	c.mu.Unlock()
	for _, f := range frames {
		c.extra.Frame(f)
	}
}

// Frame implements core.FrameSink: this is the campaign engine's streaming
// hook. The engine's ordering buffer guarantees frames arrive in
// deterministic grid order, so appending preserves byte-identity with the
// batch report; the shared pre-rendered line is what every subscriber will
// write.
func (c *Campaign) Frame(f core.Frame) error {
	c.mu.Lock()
	c.frames = append(c.frames, f)
	c.cond.Broadcast()
	c.mu.Unlock()
	return c.extra.Frame(f)
}

// Record implements core.Sink for producers that do not pre-encode: the
// record is rendered here (once) and then follows the frame path.
func (c *Campaign) Record(rec core.RunRecord) error {
	f, err := wire.EncodeFrame(rec)
	if err != nil {
		return err
	}
	return c.Frame(f)
}

var _ core.Sink = (*Campaign)(nil)
var _ core.FrameSink = (*Campaign)(nil)

// setRunning marks the campaign live.
func (c *Campaign) setRunning() {
	c.mu.Lock()
	c.status = StatusRunning
	c.cond.Broadcast()
	c.mu.Unlock()
}

// finish records the terminal state; already streamed records stay
// buffered either way. Failed campaigns pass whatever partial stats the
// engine returned (zero when the spec never materialized).
func (c *Campaign) finish(stats campaign.Stats, workers int, err error) {
	c.mu.Lock()
	if err != nil {
		c.status = StatusFailed
		c.errMsg = err.Error()
	} else {
		c.status = StatusDone
	}
	c.stats = stats
	c.workers = workers
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Status returns the current lifecycle state.
func (c *Campaign) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.status
}

// terminal reports whether a status is final.
func (s Status) terminal() bool { return s == StatusDone || s == StatusFailed }

// next blocks until frames beyond i exist, the campaign reaches a
// terminal state, or ctx is cancelled, then returns the frames from i on
// and the status seen. The returned slice is a view of the append-only
// buffer: elements below the observed length are never rewritten (and each
// frame's Line is immutable), so reading them after the lock is released
// is safe.
func (c *Campaign) next(ctx context.Context, i int) ([]core.Frame, Status) {
	// Wake the wait loop when the subscriber goes away; the request
	// context is cancelled by net/http as soon as the handler returns or
	// the client disconnects, so this goroutine cannot outlive the stream.
	stop := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer stop()

	c.mu.Lock()
	defer c.mu.Unlock()
	for i >= len(c.frames) && !c.status.terminal() && ctx.Err() == nil {
		c.cond.Wait()
	}
	return c.frames[i:len(c.frames):len(c.frames)], c.status
}

// View is the JSON shape of a campaign's registry state.
type View struct {
	ID          string `json:"id"`
	Status      Status `json:"status"`
	Error       string `json:"error,omitempty"`
	Fingerprint string `json:"fingerprint"`
	Spec        Spec   `json:"spec"`
	// TraceID is the submission trace this campaign runs under (see
	// submitResponse.TraceID).
	TraceID string `json:"trace_id,omitempty"`
	// Tenant is the authenticated tenant that first scheduled this
	// campaign; omitted in anonymous mode, so auth-off views are unchanged.
	Tenant string `json:"tenant,omitempty"`
	// Records counts buffered (already streamed) records so far; for a
	// store-backed campaign that has not hydrated yet it counts the
	// records waiting on disk.
	Records int `json:"records"`
	// Stored marks a campaign whose records were restored from the durable
	// store rather than run by this process.
	Stored bool `json:"stored,omitempty"`
	// Workers is the resolved engine worker count (set once running ends).
	Workers int `json:"workers,omitempty"`
	// Engine bookkeeping, present once the campaign finishes. PlannedRuns
	// and SkippedRuns separate what an exhaustive sweep would have
	// scheduled from what actually ran: adaptive campaigns skip grid
	// points, and those points appear here — never in Outcomes, which
	// counts executed runs only.
	Runs        int            `json:"runs,omitempty"`
	PlannedRuns int            `json:"planned_runs,omitempty"`
	SkippedRuns int            `json:"skipped_runs,omitempty"`
	Recoveries  int            `json:"recoveries,omitempty"`
	SimTime     string         `json:"sim_time,omitempty"`
	Outcomes    map[string]int `json:"outcomes,omitempty"`
}

// view snapshots the campaign for the status endpoints.
func (c *Campaign) view() View {
	c.mu.Lock()
	defer c.mu.Unlock()
	records := len(c.frames)
	if c.fromStore && !c.hydrated {
		records = c.storedRecords
	}
	v := View{
		ID:          c.id,
		Status:      c.status,
		Error:       c.errMsg,
		Fingerprint: c.fingerprint,
		TraceID:     c.traceID,
		Tenant:      c.tenant,
		Spec:        c.spec,
		Records:     records,
		Stored:      c.fromStore,
		Workers:     c.workers,
		Runs:        c.stats.Runs,
		PlannedRuns: c.stats.Planned,
		SkippedRuns: c.stats.Skipped(),
		Recoveries:  c.stats.Recoveries,
	}
	if c.stats.SimTime > 0 {
		v.SimTime = c.stats.SimTime.String()
	}
	if len(c.stats.Outcomes) > 0 {
		v.Outcomes = make(map[string]int, len(c.stats.Outcomes))
		for o, n := range c.stats.Outcomes {
			v.Outcomes[o.String()] = n
		}
	}
	return v
}
