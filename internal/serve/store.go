package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/store"
	"repro/internal/xgene"
)

// This file is the bridge between the serving registry and the durable
// characterization store (internal/store). The registry stays the
// authority on liveness and LRU order; the store is the authority on what
// survived a restart. Three flows meet here:
//
//   - persist: execute() tees every record of a successful campaign into a
//     segment writer and commits it with the spec + bookkeeping as the
//     manifest summary;
//   - adopt: a fingerprint found in the manifest but not in the registry
//     (daemon restart, or evicted-then-resubmitted) becomes a done
//     campaign with an empty buffer;
//   - hydrate: the first stream or cache hit on an adopted campaign reads
//     the segment back — the replayed bytes are identical to the original
//     live stream because the segment IS that stream.

// storedMeta is the summary each manifest line carries: everything the
// registry needs to rebuild its view of a finished campaign without
// opening the segment.
type storedMeta struct {
	Spec       Spec           `json:"spec"`
	Workers    int            `json:"workers"`
	Shards     int            `json:"shards,omitempty"`
	Runs       int            `json:"runs,omitempty"`
	Planned    int            `json:"planned,omitempty"`
	Recoveries int            `json:"recoveries,omitempty"`
	SimTime    time.Duration  `json:"sim_time_ns,omitempty"`
	Outcomes   map[string]int `json:"outcomes,omitempty"`
}

// metaOf flattens campaign bookkeeping into the persisted summary.
func metaOf(spec Spec, workers int, stats campaign.Stats) storedMeta {
	m := storedMeta{
		Spec:       spec,
		Workers:    workers,
		Shards:     stats.Shards,
		Runs:       stats.Runs,
		Planned:    stats.Planned,
		Recoveries: stats.Recoveries,
		SimTime:    stats.SimTime,
	}
	if len(stats.Outcomes) > 0 {
		m.Outcomes = make(map[string]int, len(stats.Outcomes))
		for o, n := range stats.Outcomes {
			m.Outcomes[o.String()] = n
		}
	}
	return m
}

// campaignStats inflates the summary back into engine bookkeeping.
func (m storedMeta) campaignStats() (campaign.Stats, error) {
	st := campaign.Stats{
		Shards:     m.Shards,
		Runs:       m.Runs,
		Planned:    m.Planned,
		Recoveries: m.Recoveries,
		SimTime:    m.SimTime,
	}
	if len(m.Outcomes) > 0 {
		st.Outcomes = make(map[xgene.Outcome]int, len(m.Outcomes))
		for name, n := range m.Outcomes {
			o, err := xgene.ParseOutcome(name)
			if err != nil {
				return st, err
			}
			st.Outcomes[o] = n
		}
	}
	return st, nil
}

// adoptLocked registers a done campaign for a store entry. It refuses
// entries whose metadata does not parse or does not fingerprint back to
// the key it is filed under — a corrupted or tampered manifest line must
// never impersonate another spec's characterization; the submission then
// simply re-runs. Callers hold s.mu.
func (s *Server) adoptLocked(e store.Entry) (*Campaign, bool) {
	var m storedMeta
	if err := json.Unmarshal(e.Meta, &m); err != nil {
		return nil, false
	}
	stats, err := m.campaignStats()
	if err != nil {
		return nil, false
	}
	spec := m.Spec.withDefaults()
	if spec.Fingerprint() != e.Fingerprint {
		return nil, false
	}
	c := newStoredCampaign(fmt.Sprintf("c%06d", s.nextID), spec, e.Fingerprint,
		s.spool, stats, m.Workers, e.Records)
	s.evictLocked()
	s.nextID++
	s.byID[c.id] = c
	s.byFP[c.fingerprint] = c
	s.order = append(s.order, c)
	s.touchLocked(c)
	return c, true
}

// errStoreUnavailable wraps transient segment-load failures: the
// characterization is still on disk, the caller should retry (503), and
// nothing may be forgotten or re-run over it.
var errStoreUnavailable = errors.New("serve: store temporarily unavailable")

// hydrate reads an adopted campaign's segment back into its buffer. Safe
// to race: the loser's load is discarded. Load failures split two ways,
// mirroring store.Load's contract: if the store dropped the entry (the
// segment was damaged and quarantined) the campaign is marked failed so a
// resubmission re-runs cleanly; if the entry survived (a transient read
// error) the campaign stays done/unhydrated and the returned
// errStoreUnavailable tells the caller to retry rather than re-measure.
func (s *Server) hydrate(c *Campaign) error {
	if s.store == nil || !c.needsHydration() {
		return nil
	}
	frames, err := s.store.LoadFrames(c.fingerprint)
	if err != nil {
		if _, ok := s.store.Get(c.fingerprint); ok {
			return fmt.Errorf("%w: %v", errStoreUnavailable, err)
		}
		c.markLost(err)
		return nil
	}
	c.hydrateWith(frames)
	return nil
}

// storeTee fans the engine's stream into the live campaign buffer and the
// store's segment writer. A writer failure is remembered, not propagated:
// losing durability must never abort the characterization that is being
// measured — execute() checks err before committing and aborts the
// segment instead. A failing write retries briefly (transient conditions
// like a momentary ENOSPC clear under backoff); once retries are
// exhausted the server degrades to memory-only streaming for the rest of
// the campaign and /readyz turns unready until a later commit succeeds.
type storeTee struct {
	s    *Server
	c    *Campaign
	live core.Sink
	w    *store.Writer
	err  error
}

// teeRetries/teeBackoff bound the persist retry: enough to ride out a
// blip, short enough that a genuinely full disk costs milliseconds, not
// a stalled characterization.
const teeRetries = 2
const teeBackoff = 2 * time.Millisecond

// persist runs one segment write with bounded retry; after the final
// failure the tee latches the error and flips the server degraded.
func (t *storeTee) persist(write func() error) {
	if t.err != nil {
		return
	}
	var err error
	for attempt := 0; ; attempt++ {
		if err = write(); err == nil {
			return
		}
		if attempt >= teeRetries {
			break
		}
		time.Sleep(teeBackoff << attempt)
	}
	t.err = err
	t.s.setStoreDegraded(t.c, err)
}

func (t *storeTee) Record(rec core.RunRecord) error {
	if err := t.live.Record(rec); err != nil {
		return err
	}
	t.persist(func() error { return t.w.Record(rec) })
	return nil
}

// Frame keeps the tee on the encode-once fast path: the live buffer and a
// JSONL segment writer both consume the shared pre-rendered line.
func (t *storeTee) Frame(f core.Frame) error {
	if err := core.EmitFrame(t.live, f); err != nil {
		return err
	}
	t.persist(func() error { return t.w.Frame(f) })
	return nil
}

var _ core.Sink = (*storeTee)(nil)
var _ core.FrameSink = (*storeTee)(nil)
