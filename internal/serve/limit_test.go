package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock steps a limiter's time deterministically.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func TestEffectiveLimits(t *testing.T) {
	opts := Options{RateLimit: 10, RateBurst: 20, MaxStreamsPerTenant: 4}
	if l := opts.effectiveLimits(Key{}); l.rate != 10 || l.burst != 20 || l.maxStreams != 4 {
		t.Errorf("defaults = %+v", l)
	}
	if l := opts.effectiveLimits(Key{RateLimit: 2, RateBurst: 3, MaxStreams: 1}); l.rate != 2 || l.burst != 3 || l.maxStreams != 1 {
		t.Errorf("overrides = %+v", l)
	}
	// Negative override = explicitly unlimited for a trusted tenant.
	if l := opts.effectiveLimits(Key{RateLimit: -1}); l.rate != 0 {
		t.Errorf("unlimited override = %+v", l)
	}
	// Burst floor: never below one full request.
	if l := (Options{RateLimit: 0.5}).effectiveLimits(Key{}); l.burst != 1 {
		t.Errorf("fractional-rate burst = %v, want 1", l.burst)
	}
	if l := (Options{}).effectiveLimits(Key{}); l.rate != 0 {
		t.Errorf("no-limit defaults = %+v", l)
	}
}

// TestTokenBucket steps a fake clock through the refill math: a fresh
// bucket starts full, drains per request, refuses with an accurate
// retry-after when empty, and refills continuously (not on tick edges).
func TestTokenBucket(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	l := newLimiter()
	l.now = clock.now
	lim := limits{rate: 2, burst: 2}

	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("a", lim); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	ok, wait := l.allow("a", lim)
	if ok {
		t.Fatal("empty bucket allowed a request")
	}
	// 2 req/s = 500ms per token; the bucket is exactly empty.
	if wait != 500*time.Millisecond {
		t.Errorf("retry-after = %v, want 500ms", wait)
	}
	// Half a token after 250ms: still refused, but the wait shrank.
	clock.advance(250 * time.Millisecond)
	if ok, wait = l.allow("a", lim); ok || wait != 250*time.Millisecond {
		t.Errorf("after 250ms: ok=%v wait=%v, want refused 250ms", ok, wait)
	}
	clock.advance(250 * time.Millisecond)
	if ok, _ = l.allow("a", lim); !ok {
		t.Error("refilled token refused")
	}
	// Tenants are isolated: b's bucket is untouched by a's exhaustion.
	if ok, _ = l.allow("b", lim); !ok {
		t.Error("fresh tenant refused while another is exhausted")
	}
	// Refill caps at burst, no matter how long the idle stretch.
	clock.advance(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ = l.allow("a", lim); !ok {
			t.Fatalf("post-idle burst request %d refused", i)
		}
	}
	if ok, _ = l.allow("a", lim); ok {
		t.Error("idle refill exceeded burst")
	}
}

func TestStreamSlots(t *testing.T) {
	l := newLimiter()
	lim := limits{maxStreams: 2}
	ok1, rel1 := l.acquireStream("a", lim)
	ok2, rel2 := l.acquireStream("a", lim)
	if !ok1 || !ok2 {
		t.Fatal("slots under the cap refused")
	}
	if ok, _ := l.acquireStream("a", lim); ok {
		t.Fatal("slot over the cap granted")
	}
	// Another tenant's slots are its own.
	if ok, rel := l.acquireStream("b", lim); !ok {
		t.Error("tenant b starved by tenant a's streams")
	} else {
		rel()
	}
	rel1()
	rel1() // double release must not free a second slot
	if ok, rel := l.acquireStream("a", lim); !ok {
		t.Error("released slot not reusable")
	} else {
		defer rel()
	}
	if ok, _ := l.acquireStream("a", lim); ok {
		t.Error("double release freed two slots")
	}
	rel2()
}

// TestRateLimit429 drives a tightly limited server over quota and pins the
// HTTP surface: 429 status, integral Retry-After >= 1, the rejection in
// serve_rate_limited_total{tenant} and /stats, and recovery after waiting.
func TestRateLimit429(t *testing.T) {
	_, ts := newTestServer(t, Options{
		AuthKeys:  []Key{{Secret: "k", Tenant: "alpha"}},
		RateLimit: 0.1, // one token, ~10s to the next: the test never refills
		RateBurst: 2,
	})
	hdr := map[string]string{"X-API-Key": "k"}
	mk := func(seed uint64) Spec {
		sp := testSpec(1)
		sp.Seed = seed
		return sp
	}
	for i := 0; i < 2; i++ {
		if resp, body := authedSubmit(t, ts, mk(uint64(300+i)), hdr); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("burst submit %d status %d: %s", i, resp.StatusCode, body)
		}
	}
	resp, _ := authedSubmit(t, ts, mk(302), hdr)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota status %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Errorf("Retry-After = %q, want integer >= 1", resp.Header.Get("Retry-After"))
	}

	body := scrapeMetrics(t, ts.URL)
	if got := metricValue(t, body, `serve_rate_limited_total{tenant="alpha"}`); got < 1 {
		t.Errorf("serve_rate_limited_total{alpha} = %v, want >= 1", got)
	}
	st, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats statsResponse
	if err := json.NewDecoder(st.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	st.Body.Close()
	if stats.RateLimited < 1 {
		t.Errorf("stats.RateLimited = %d, want >= 1", stats.RateLimited)
	}
}

// TestPerTenantOverride gives one tenant a keyfile-level unlimited
// override on a limited server: the default-tenant key runs dry while the
// overridden one never does.
func TestPerTenantOverride(t *testing.T) {
	_, ts := newTestServer(t, Options{
		AuthKeys: []Key{
			{Secret: "slow", Tenant: "slow"},
			{Secret: "fast", Tenant: "fast", RateLimit: -1},
		},
		RateLimit: 0.1,
		RateBurst: 1,
	})
	mk := func(seed uint64) Spec {
		sp := testSpec(1)
		sp.Seed = seed
		return sp
	}
	if resp, _ := authedSubmit(t, ts, mk(400), map[string]string{"X-API-Key": "slow"}); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("slow tenant's first submit: %d", resp.StatusCode)
	}
	if resp, _ := authedSubmit(t, ts, mk(401), map[string]string{"X-API-Key": "slow"}); resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("slow tenant's second submit: %d, want 429", resp.StatusCode)
	}
	for i := 0; i < 5; i++ {
		if resp, _ := authedSubmit(t, ts, mk(uint64(410+i)), map[string]string{"X-API-Key": "fast"}); resp.StatusCode != http.StatusAccepted {
			t.Errorf("unlimited tenant submit %d: %d", i, resp.StatusCode)
		}
	}
}

// TestStreamSubscriberCap holds a stream open on a gated campaign and
// verifies the tenant's second concurrent stream gets 429 while another
// tenant still streams freely.
func TestStreamSubscriberCap(t *testing.T) {
	s, ts := newTestServer(t, Options{
		AuthKeys: []Key{
			{Secret: "a", Tenant: "alpha"},
			{Secret: "b", Tenant: "bravo"},
		},
		MaxStreamsPerTenant: 1,
	})
	gate := make(chan struct{})
	s.gate = gate
	defer close(gate)

	resp, body := authedSubmit(t, ts, testSpec(1), map[string]string{"X-API-Key": "a"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", resp.StatusCode, body)
	}
	var sr submitResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	// The campaign is parked on the gate, so streams stay open until we
	// close it.
	open := func(key string) *http.Response {
		req, err := http.NewRequest("GET", ts.URL+sr.Stream, nil)
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-API-Key", key)
		r, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	first := open("a")
	defer first.Body.Close()
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first stream status %d", first.StatusCode)
	}
	second := open("a")
	io.Copy(io.Discard, second.Body)
	second.Body.Close()
	if second.StatusCode != http.StatusTooManyRequests {
		t.Errorf("capped stream status %d, want 429", second.StatusCode)
	}
	if ra := second.Header.Get("Retry-After"); ra == "" {
		t.Error("capped stream has no Retry-After")
	}
	other := open("b")
	if other.StatusCode != http.StatusOK {
		t.Errorf("other tenant's stream status %d, want 200", other.StatusCode)
	}
	other.Body.Close()
	// Releasing the first slot frees the tenant's cap again.
	first.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		retry := open("a")
		code := retry.StatusCode
		// Close without draining: a 200 here is a live stream that will
		// not EOF until the gate opens, and aborting it is the point.
		retry.Body.Close()
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slot never freed after the stream closed")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestRateLimitIsolation is the starvation test the ISSUE calls for (run
// under -race in CI): one tenant hammering itself deep into 429 territory
// must not cost a second tenant a single acceptance.
func TestRateLimitIsolation(t *testing.T) {
	_, ts := newTestServer(t, Options{
		AuthKeys: []Key{
			{Secret: "noisy", Tenant: "noisy"},
			{Secret: "quiet", Tenant: "quiet", RateLimit: -1},
		},
		RateLimit: 1,
		RateBurst: 2,
		// Both tenants' campaigns must actually fit in flight.
		QueueDepth:  64,
		Concurrency: 4,
	})
	mk := func(seed uint64) Spec {
		// A 1-point grid keeps the engine cost trivial; unique seeds keep
		// every submission a fresh campaign, not a cache hit.
		return Spec{Seed: seed, Benches: []string{"mcf"}, VoltagesMV: []float64{980}, Repetitions: 1, Workers: 1}
	}

	const quietN, noisyN = 20, 40
	var wg sync.WaitGroup
	var noisy429 int64
	var mu sync.Mutex
	quietFailures := []string{}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < noisyN; i++ {
			resp, _ := authedSubmit(t, ts, mk(uint64(1000+i)), map[string]string{"X-API-Key": "noisy"})
			if resp.StatusCode == http.StatusTooManyRequests {
				mu.Lock()
				noisy429++
				mu.Unlock()
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < quietN; i++ {
			resp, body := authedSubmit(t, ts, mk(uint64(2000+i)), map[string]string{"X-API-Key": "quiet"})
			if resp.StatusCode != http.StatusAccepted && resp.StatusCode != http.StatusOK {
				mu.Lock()
				quietFailures = append(quietFailures, fmt.Sprintf("submit %d: status %d: %s", i, resp.StatusCode, body))
				mu.Unlock()
			}
		}
	}()
	wg.Wait()
	if noisy429 == 0 {
		t.Error("noisy tenant was never rate limited; the test exercised nothing")
	}
	if len(quietFailures) > 0 {
		t.Errorf("quiet tenant starved %d/%d times despite its own unlimited bucket:\n%s",
			len(quietFailures), quietN, strings.Join(quietFailures, "\n"))
	}
}
