// Package serve is the campaign service layer: a long-lived daemon wrapped
// around the fleet campaign engine. It accepts characterization
// submissions over HTTP/JSON — uniform grids or adaptive Vmin searches
// (Spec.Strategy), on single boards or multi-board fleets (Spec.Boards) —
// schedules them on a bounded run queue, streams every run record live to
// any number of subscribers (NDJSON or SSE), and answers repeated
// submissions from an in-memory characterization cache keyed by the spec's
// deterministic fingerprint — the paper's multi-day campaigns become a
// shared service instead of a batch job. The cache itself is bounded
// (Options.CacheMax): least-recently-used finished campaigns are evicted,
// so record buffers cannot grow without limit; an evicted fingerprint
// simply re-runs on resubmission.
//
// Determinism is the load-bearing invariant, inherited from the engine:
// the stream a subscriber sees is byte-identical to the serial driver's
// batch report for the same spec, at any worker count, whether the records
// come live from the engine or replayed from the cache.
//
// API:
//
//	POST /campaigns            submit a Spec; 202 {id, fingerprint, cached,
//	                           status, stream} (200 when served from cache,
//	                           503 when the run queue is full)
//	GET  /campaigns            list every campaign's state
//	GET  /campaigns/{id}       one campaign's state
//	GET  /campaigns/{id}/stream
//	                           live NDJSON record stream (SSE with
//	                           Accept: text/event-stream); replays buffered
//	                           records first, then follows the campaign
//	GET  /stats                service counters (submissions, cache hits,
//	                           grids run, queue depth, statuses)
//	GET  /healthz              liveness probe
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"

	"repro/internal/campaign"
	"repro/internal/core"
)

// Options parameterizes a Server.
type Options struct {
	// QueueDepth bounds how many campaigns may wait behind the running
	// ones; submissions beyond the bound are rejected with 503 rather than
	// queued without limit. Zero means 16.
	QueueDepth int
	// Concurrency is how many campaigns execute at once. Each campaign
	// already parallelizes internally (Spec.Workers), so the default of 1
	// keeps one grid's workers from fighting another's.
	Concurrency int
	// CacheMax bounds the registry — and with it the in-memory record
	// buffers that back the characterization cache. When admitting a new
	// campaign would exceed the cap, the least-recently-used terminal
	// (done or failed) campaign is evicted: its buffer is dropped, its id
	// stops resolving, and a resubmission of its fingerprint re-runs the
	// grid instead of replaying. Running and queued campaigns are never
	// evicted, so the registry can transiently exceed the cap by the
	// in-flight count when every entry is live. Zero means 256.
	CacheMax int
}

// Server is the campaign service: registry, scheduler, cache and HTTP
// surface. Create with New, serve with any http.Server, stop with Close.
type Server struct {
	opts  Options
	mux   *http.ServeMux
	spool *core.MultiSink

	ctx    context.Context
	cancel context.CancelFunc
	queue  chan *Campaign
	wg     sync.WaitGroup

	mu          sync.Mutex
	byID        map[string]*Campaign
	byFP        map[string]*Campaign
	order       []*Campaign
	nextID      int
	useSeq      uint64
	submissions int
	cacheHits   int
	gridsRun    int
	evictions   int

	// gate, when set (tests only), blocks execute until the channel is
	// closed, making queue-bound behavior deterministic to observe.
	gate chan struct{}
}

// New builds a Server and starts its scheduler workers.
func New(opts Options) *Server {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 16
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 1
	}
	if opts.CacheMax <= 0 {
		opts.CacheMax = 256
	}
	s := &Server{
		opts:  opts,
		spool: core.NewMultiSink(),
		queue: make(chan *Campaign, opts.QueueDepth),
		byID:  make(map[string]*Campaign),
		byFP:  make(map[string]*Campaign),
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("POST /campaigns", s.handleSubmit)
	s.mux.HandleFunc("GET /campaigns", s.handleList)
	s.mux.HandleFunc("GET /campaigns/{id}", s.handleGet)
	s.mux.HandleFunc("GET /campaigns/{id}/stream", s.handleStream)

	for i := 0; i < opts.Concurrency; i++ {
		s.wg.Add(1)
		go s.scheduler()
	}
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close cancels every running campaign (their engines observe the context
// between shards) and stops the scheduler workers. Queued campaigns stay
// queued; streams of cancelled campaigns terminate with status failed.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
}

// AttachSink subscribes a sink to every record of every campaign (the
// daemon's spool/monitoring channel, Fig. 2's cloud log). Records arrive
// in deterministic order within a campaign; campaigns running concurrently
// (Concurrency > 1) interleave.
func (s *Server) AttachSink(sink core.Sink) { s.spool.Subscribe(sink) }

// scheduler drains the run queue until the server closes.
func (s *Server) scheduler() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case c := <-s.queue:
			s.execute(c)
		}
	}
}

// execute runs one campaign through the engine — the spec's strategy picks
// the scheduler — streaming into the campaign's record buffer.
func (s *Server) execute(c *Campaign) {
	c.setRunning()
	if s.gate != nil {
		<-s.gate
	}
	cfg := campaign.Config{
		Workers: c.spec.Workers,
		Seed:    c.spec.Seed,
		Sink:    c,
		Context: s.ctx,
	}
	// Submit stores the defaulted spec, so Strategy is already resolved.
	adaptive := c.spec.Strategy == StrategyAdaptive
	var sched campaign.Schedule
	var grid campaign.Grid
	var err error
	if adaptive {
		sched, err = c.spec.Schedule()
	} else {
		grid, err = c.spec.Grid()
	}
	if err != nil {
		c.finish(campaign.Stats{}, 0, err)
		return
	}
	s.mu.Lock()
	s.gridsRun++
	s.mu.Unlock()
	if adaptive {
		rep, err := campaign.RunSchedule(cfg, sched)
		if rep == nil {
			c.finish(campaign.Stats{}, 0, err)
			return
		}
		c.finish(rep.Stats, rep.Workers, err)
		return
	}
	rep, err := campaign.RunGrid(cfg, grid)
	if rep == nil {
		c.finish(campaign.Stats{}, 0, err)
		return
	}
	c.finish(rep.Stats, rep.Workers, err)
}

// errQueueFull distinguishes backpressure from bad submissions.
var errQueueFull = errors.New("serve: run queue full")

// Submit registers a spec and enqueues it, or returns the cached campaign
// for an already-known fingerprint. cached is true when no new grid run
// was scheduled. A previously failed campaign does not satisfy its
// fingerprint: resubmitting replaces it with a fresh attempt.
func (s *Server) Submit(spec Spec) (c *Campaign, cached bool, err error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, false, err
	}
	fp := spec.Fingerprint()

	s.mu.Lock()
	defer s.mu.Unlock()
	s.submissions++
	if prev := s.byFP[fp]; prev != nil && prev.Status() != StatusFailed {
		s.cacheHits++
		s.touchLocked(prev)
		return prev, true, nil
	}
	c = newCampaign(fmt.Sprintf("c%06d", s.nextID), spec, fp, s.spool)
	// Enqueue and register under one critical section: a rejected
	// submission leaves no trace, and a registered campaign is always
	// queued. The send is non-blocking, so holding the lock is safe.
	select {
	case s.queue <- c:
	default:
		return nil, false, errQueueFull
	}
	s.evictLocked()
	s.nextID++
	s.byID[c.id] = c
	s.byFP[fp] = c
	s.order = append(s.order, c)
	s.touchLocked(c)
	return c, false, nil
}

// touchLocked bumps a campaign's LRU clock. Callers hold s.mu.
func (s *Server) touchLocked(c *Campaign) {
	s.useSeq++
	c.lastUsed = s.useSeq
}

// evictLocked makes room for one more registry entry under Options.CacheMax
// by dropping least-recently-used terminal campaigns — the registry IS the
// characterization cache, so eviction trades a future re-run for bounded
// memory. Live (queued/running) campaigns are never evicted. Callers hold
// s.mu.
func (s *Server) evictLocked() {
	for len(s.order) >= s.opts.CacheMax {
		victim := -1
		for i, c := range s.order {
			if !c.Status().terminal() {
				continue
			}
			if victim == -1 || c.lastUsed < s.order[victim].lastUsed {
				victim = i
			}
		}
		if victim == -1 {
			return // everything is live; admit over the cap
		}
		c := s.order[victim]
		s.order = append(s.order[:victim], s.order[victim+1:]...)
		delete(s.byID, c.id)
		if s.byFP[c.fingerprint] == c {
			delete(s.byFP, c.fingerprint)
		}
		s.evictions++
	}
}

// lookup finds a campaign by id, refreshing its LRU position.
func (s *Server) lookup(id string) *Campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.byID[id]
	if c != nil {
		s.touchLocked(c)
	}
	return c
}

// submitResponse is the POST /campaigns reply.
type submitResponse struct {
	ID          string `json:"id"`
	Fingerprint string `json:"fingerprint"`
	Status      Status `json:"status"`
	Cached      bool   `json:"cached"`
	Stream      string `json:"stream"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec Spec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("serve: decode spec: %w", err))
		return
	}
	c, cached, err := s.Submit(spec)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, errQueueFull) {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, err)
		return
	}
	status := http.StatusAccepted
	if cached {
		status = http.StatusOK
	}
	writeJSON(w, status, submitResponse{
		ID:          c.id,
		Fingerprint: c.fingerprint,
		Status:      c.Status(),
		Cached:      cached,
		Stream:      "/campaigns/" + c.id + "/stream",
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	campaigns := append([]*Campaign(nil), s.order...)
	s.mu.Unlock()
	views := make([]View, 0, len(campaigns))
	for _, c := range campaigns {
		views = append(views, c.view())
	}
	writeJSON(w, http.StatusOK, views)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(r.PathValue("id"))
	if c == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown campaign %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, c.view())
}

// handleStream tails a campaign: buffered records first (cache replay),
// then live records as the engine's ordering buffer releases them. NDJSON
// by default — byte-identical to the batch report's JSONL, which is why a
// failed or cancelled campaign's NDJSON stream ends with a plain EOF and
// no terminal marker: any trailer would break the byte-identity contract.
// NDJSON consumers that need to distinguish a complete stream from a
// truncated one must confirm via GET /campaigns/{id} (status "done");
// SSE clients get the terminal status in the "done" event instead.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(r.PathValue("id"))
	if c == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("serve: unknown campaign %q", r.PathValue("id")))
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-cache")
	flusher, _ := w.(http.Flusher)

	enc := json.NewEncoder(w)
	i := 0
	for {
		recs, status := c.next(r.Context(), i)
		if r.Context().Err() != nil {
			return // client went away
		}
		for _, rec := range recs {
			if sse {
				data, err := json.Marshal(rec)
				if err != nil {
					return
				}
				if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
					return
				}
			} else if err := enc.Encode(rec); err != nil {
				return
			}
		}
		i += len(recs)
		if flusher != nil && len(recs) > 0 {
			flusher.Flush()
		}
		if status.terminal() {
			if sse {
				fmt.Fprintf(w, "event: done\ndata: {\"status\":%q}\n\n", status)
			}
			return
		}
	}
}

// statsResponse is the GET /stats reply.
type statsResponse struct {
	Submissions int            `json:"submissions"`
	CacheHits   int            `json:"cache_hits"`
	GridsRun    int            `json:"grids_run"`
	Evictions   int            `json:"evictions"`
	Cached      int            `json:"cached"`
	CacheMax    int            `json:"cache_max"`
	Queued      int            `json:"queue_len"`
	QueueDepth  int            `json:"queue_depth"`
	Statuses    map[Status]int `json:"statuses"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	resp := statsResponse{
		Submissions: s.submissions,
		CacheHits:   s.cacheHits,
		GridsRun:    s.gridsRun,
		Evictions:   s.evictions,
		Cached:      len(s.order),
		CacheMax:    s.opts.CacheMax,
		Queued:      len(s.queue),
		QueueDepth:  s.opts.QueueDepth,
		Statuses:    make(map[Status]int),
	}
	campaigns := append([]*Campaign(nil), s.order...)
	s.mu.Unlock()
	for _, c := range campaigns {
		resp.Statuses[c.Status()]++
	}
	writeJSON(w, http.StatusOK, resp)
}
