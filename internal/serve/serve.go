// Package serve is the campaign service layer: a long-lived daemon wrapped
// around the fleet campaign engine. It accepts characterization
// submissions over HTTP/JSON — uniform grids or adaptive Vmin searches
// (Spec.Strategy), on single boards or multi-board fleets (Spec.Boards) —
// schedules them on a bounded run queue, streams every run record live to
// any number of subscribers (NDJSON or SSE), and answers repeated
// submissions from an in-memory characterization cache keyed by the spec's
// deterministic fingerprint — the paper's multi-day campaigns become a
// shared service instead of a batch job. The cache itself is bounded
// (Options.CacheMax): least-recently-used finished campaigns are evicted,
// so record buffers cannot grow without limit; an evicted fingerprint
// simply re-runs on resubmission — unless the durable store is enabled
// (Options.StoreDir), in which case every successful campaign's stream is
// also committed to disk (internal/store) and evicted or restarted
// campaigns replay their segment instead of re-running. Characterization
// is the expensive thing this whole service exists to amortize; with a
// store directory, neither a crash, a restart, nor memory pressure throws
// a finished measurement away.
//
// Determinism is the load-bearing invariant, inherited from the engine:
// the stream a subscriber sees is byte-identical to the serial driver's
// batch report for the same spec, at any worker count, whether the records
// come live from the engine or replayed from the cache.
//
// API:
//
//	POST /campaigns            submit a Spec; 202 {id, fingerprint, cached,
//	                           status, stream} (200 when served from cache,
//	                           503 when the run queue is full)
//	GET  /campaigns            list every campaign's state
//	GET  /campaigns/{id}       one campaign's state
//	GET  /campaigns/{id}/stream
//	                           live NDJSON record stream (SSE with
//	                           Accept: text/event-stream); replays buffered
//	                           records first, then follows the campaign
//	GET  /stats                service counters (submissions, cache hits,
//	                           grids run, queue depth, statuses)
//	GET  /healthz              liveness probe
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/fleet"
	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/wire"
)

func init() {
	// Queue admission is the serve layer's fault point: an injected error
	// here surfaces as backpressure (503), exactly like a full queue.
	fault.Register("serve.queue")
}

// Options parameterizes a Server.
type Options struct {
	// QueueDepth bounds how many campaigns may wait behind the running
	// ones; submissions beyond the bound are rejected with 503 rather than
	// queued without limit. Zero means 16.
	QueueDepth int
	// Concurrency is how many campaigns execute at once. Each campaign
	// already parallelizes internally (Spec.Workers), so the default of 1
	// keeps one grid's workers from fighting another's.
	Concurrency int
	// CacheMax bounds the registry — and with it the in-memory record
	// buffers that back the characterization cache. When admitting a new
	// campaign would exceed the cap, the least-recently-used terminal
	// (done or failed) campaign is evicted: its buffer is dropped, its id
	// stops resolving, and a resubmission of its fingerprint re-runs the
	// grid — unless the durable store holds its segment, in which case the
	// resubmission replays from disk instead. Running and queued campaigns
	// are never evicted, so the registry can transiently exceed the cap by
	// the in-flight count when every entry is live. Zero means 256.
	CacheMax int
	// StoreDir, when set, enables the durable characterization store
	// (internal/store) under this directory: every successful campaign's
	// record stream is committed as a segment, the registry warm-loads
	// from the manifest on boot, and restarted or evicted campaigns replay
	// from disk instead of re-running.
	StoreDir string
	// StoreMaxSegments / StoreMaxBytes bound the store; commits past a
	// bound compact least-recently-used segments first. Zero means
	// unbounded.
	StoreMaxSegments int
	StoreMaxBytes    int64
	// QuarantineMaxFiles / QuarantineMaxBytes bound the store's
	// quarantine/ directory, where recovery parks debris it refuses to
	// trust; past a bound the oldest quarantined files are deleted. Zero
	// means unbounded (keep everything for forensics).
	QuarantineMaxFiles int
	QuarantineMaxBytes int64
	// SegmentFormat selects the on-disk encoding of newly committed
	// segments: wire.FormatJSONL (default, human-greppable, byte-identical
	// to the stream) or wire.FormatBinary (compact, CRC-protected). Old
	// segments of either format keep replaying regardless — the reader
	// auto-detects — and the replayed stream bytes are identical either
	// way.
	SegmentFormat wire.Format
	// WarmLoad bounds how many manifest entries the registry adopts
	// eagerly at boot. A store can outgrow the registry by orders of
	// magnitude (CacheMax bounds memory, the store bounds disk), and a
	// boot that walks a huge manifest into the registry pays for entries
	// nobody may ever ask for — so boot adopts only the WarmLoad
	// most-recently-used entries and defers the rest, which page in on
	// demand: the first submission of a deferred fingerprint adopts it
	// from the manifest index exactly as an evicted one would, replaying
	// from disk with no re-run. Zero means CacheMax (adopting more than
	// the registry cap would evict the excess immediately anyway).
	WarmLoad int
	// AuthKeys, when non-empty, enables API-key auth on the campaign API
	// (POST /campaigns, GET /campaigns[/{id}[/stream]]): requests must
	// present a configured key (Authorization: Bearer or X-API-Key) and are
	// tagged with that key's tenant. Empty preserves anonymous mode —
	// behavior byte-identical to a pre-auth daemon. The ops surface
	// (/healthz, /metrics, /stats, /version) is never gated. Swap keys at
	// runtime with SetKeys.
	AuthKeys []Key
	// RateLimit is the default per-tenant token-bucket rate on submissions
	// and stream subscriptions, in requests/second; over-quota requests get
	// 429 with Retry-After. Zero or negative disables rate limiting. Each
	// tenant gets its own bucket (anonymous traffic shares one), so one
	// tenant's burst cannot consume another's quota. Keyfile entries may
	// override per tenant (Key.RateLimit).
	RateLimit float64
	// RateBurst is the default bucket capacity: how many requests a tenant
	// may issue back-to-back before the per-second rate applies. Zero means
	// max(1, ceil(RateLimit)).
	RateBurst int
	// MaxStreamsPerTenant caps concurrent stream subscribers per tenant;
	// the cap trips with 429. Zero or negative means unlimited. Keyfile
	// entries may override per tenant (Key.MaxStreams).
	MaxStreamsPerTenant int
	// Fleet, when non-nil, federates this daemon with a static peer ring
	// (internal/fleet): the peer protocol (GET /fleet/ring, GET
	// /fleet/segments/{fingerprint}) is served on this listener, and a
	// submission missing locally consults the ring and adopts a peer's
	// committed segment — byte-identical replay, no grid re-run — before
	// falling back to local compute. Fleet traffic bypasses the tenant
	// keyring and rate limiter; it authenticates with Fleet.Secret instead,
	// so a noisy tenant cannot starve replication.
	Fleet *fleet.Options
	// Logger receives the daemon's structured log stream: one startup
	// line with the effective configuration, then one line per campaign
	// lifecycle event (submit, run, finish, commit, replay, drain), each
	// carrying the campaign's trace ID so a single characterization can
	// be followed across logs, metrics and stream metadata. Nil discards
	// everything — the library never logs behind a caller's back.
	Logger *slog.Logger
}

// Server is the campaign service: registry, scheduler, cache and HTTP
// surface. Create with New, serve with any http.Server, stop with Close.
type Server struct {
	opts   Options
	mux    *http.ServeMux
	spool  *core.MultiSink
	store  *store.Store
	wal    *intentWAL
	logger *slog.Logger
	start  time.Time
	build  buildInfo

	// adopting counts in-flight fleet segment adoptions; Drain waits for
	// it to reach zero so a SIGTERM mid-adopt cannot strand a half-fetched
	// segment. storeDegraded flips while the durable store is rejecting
	// writes and campaigns continue memory-only (see storeTee).
	adopting      atomic.Int64
	storeDegraded atomic.Bool

	ctx    context.Context
	cancel context.CancelFunc
	queue  chan *Campaign
	wg     sync.WaitGroup

	// subscribers and subDrops are touched on stream hot paths and kept
	// out of the registry mutex.
	subscribers atomic.Int64
	subDrops    atomic.Uint64

	// keys is the installed keyring (nil = anonymous mode); swapped
	// atomically by SetKeys so SIGHUP reloads never block a request.
	// limiter holds every tenant's token bucket and stream count;
	// authFailures / rateLimited feed the /stats counters.
	keys         atomic.Pointer[Keyring]
	limiter      *limiter
	authFailures atomic.Uint64
	rateLimited  atomic.Uint64

	// fleet is the peer federation client (nil when not federated);
	// fleetReplications / fleetServed count segments adopted from peers
	// and segments streamed to them.
	fleet             *fleet.Client
	fleetReplications atomic.Uint64
	fleetServed       atomic.Uint64

	mu          sync.Mutex
	byID        map[string]*Campaign
	byFP        map[string]*Campaign
	order       []*Campaign
	nextID      int
	useSeq      uint64
	submissions int
	cacheHits   int
	gridsRun    int
	evictions   int
	replayHits  int
	storeErrors int
	draining    bool
	// Crash-resume bookkeeping: campaigns re-admitted from the intent
	// journal at boot, grids resumed from a checkpoint, and the runs those
	// checkpoints saved from re-execution.
	requeued     int
	gridsResumed int
	runsSaved    int
	// Boot-time warm-load bookkeeping (see Options.WarmLoad).
	warmLoaded   int
	warmDeferred int
	bootDur      time.Duration

	// gate, when set (tests only), blocks execute until the channel is
	// closed, making queue-bound behavior deterministic to observe.
	gate chan struct{}
}

// New builds a Server and starts its scheduler workers. With
// Options.StoreDir set it also opens (recovering if necessary) the durable
// store and warm-loads the registry from its manifest — at most
// Options.WarmLoad entries, most recent last so the in-memory LRU order
// continues where the last process left off; anything beyond the threshold
// stays on disk and pages in on first demand.
func New(opts Options) (*Server, error) {
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 16
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = 1
	}
	if opts.CacheMax <= 0 {
		opts.CacheMax = 256
	}
	if opts.WarmLoad <= 0 {
		opts.WarmLoad = opts.CacheMax
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(discardHandler{})
	}
	s := &Server{
		opts:    opts,
		spool:   core.NewMultiSink(),
		logger:  logger,
		start:   time.Now(),
		build:   readBuildInfo(),
		queue:   make(chan *Campaign, opts.QueueDepth),
		byID:    make(map[string]*Campaign),
		byFP:    make(map[string]*Campaign),
		limiter: newLimiter(),
	}
	if len(opts.AuthKeys) > 0 {
		if err := s.SetKeys(opts.AuthKeys); err != nil {
			return nil, err
		}
	}
	if opts.Fleet != nil {
		fopts := *opts.Fleet
		if fopts.Logger == nil {
			fopts.Logger = logger
		}
		fl, err := fleet.New(fopts)
		if err != nil {
			return nil, err
		}
		s.fleet = fl
	}
	var pendingIntents []intentOp
	if opts.StoreDir != "" {
		bootStart := time.Now()
		st, err := store.Open(store.Options{
			Dir:                opts.StoreDir,
			MaxSegments:        opts.StoreMaxSegments,
			MaxBytes:           opts.StoreMaxBytes,
			Format:             opts.SegmentFormat,
			QuarantineMaxFiles: opts.QuarantineMaxFiles,
			QuarantineMaxBytes: opts.QuarantineMaxBytes,
		})
		if err != nil {
			return nil, err
		}
		s.store = st
		wal, pending, err := openIntentWAL(opts.StoreDir)
		if err != nil {
			st.Close()
			return nil, err
		}
		s.wal = wal
		pendingIntents = pending
		// Entries arrive least-recently-used first; adopting the most
		// recent WarmLoad of them preserves relative LRU order, and the
		// skipped prefix is exactly the part eviction would drop first.
		entries := st.Entries()
		skip := 0
		if len(entries) > opts.WarmLoad {
			skip = len(entries) - opts.WarmLoad
		}
		s.mu.Lock()
		for _, e := range entries[skip:] {
			s.adoptLocked(e)
		}
		s.warmLoaded = len(entries) - skip
		s.warmDeferred = skip
		s.bootDur = time.Since(bootStart)
		s.mu.Unlock()
	}
	s.ctx, s.cancel = context.WithCancel(context.Background())

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /version", s.handleVersion)
	// The campaign API sits behind the auth gate (a pass-through in
	// anonymous mode); the ops surface above stays open — see authed.
	s.mux.HandleFunc("POST /campaigns", s.authed(s.handleSubmit))
	s.mux.HandleFunc("GET /campaigns", s.authed(s.handleList))
	s.mux.HandleFunc("GET /campaigns/{id}", s.authed(s.handleGet))
	s.mux.HandleFunc("GET /campaigns/{id}/stream", s.authed(s.handleStream))
	// The fleet protocol is peer-to-peer traffic: authenticated by the
	// shared fleet secret, never by the tenant keyring, and exempt from
	// tenant rate limits — replication must keep working while a noisy
	// tenant is being throttled.
	if s.fleet != nil {
		s.mux.HandleFunc("GET /fleet/ring", s.fleetAuthed(s.handleFleetRing))
		s.mux.HandleFunc("GET /fleet/segments/{fp}", s.fleetAuthed(s.handleFleetSegment))
	}

	for i := 0; i < opts.Concurrency; i++ {
		s.wg.Add(1)
		go s.scheduler()
	}
	if len(pendingIntents) > 0 {
		// Requeue on a goroutine: the pending set can exceed QueueDepth,
		// and the schedulers just started are what drain the queue — a
		// blocking send from New itself would deadlock the boot.
		s.wg.Add(1)
		go s.requeueIntents(pendingIntents)
	}
	// One structured startup line with the effective configuration: the
	// first thing an operator greps for when a fleet member misbehaves.
	s.logger.Info("server started",
		"queue_depth", opts.QueueDepth,
		"concurrency", opts.Concurrency,
		"cache_max", opts.CacheMax,
		"store_dir", opts.StoreDir,
		"segment_format", string(opts.SegmentFormat),
		"warm_loaded", s.warmLoaded,
		"warm_deferred", s.warmDeferred,
		"auth_enabled", s.AuthEnabled(),
		"rate_limit", opts.RateLimit,
		"fleet_peers", fleetPeerCount(opts.Fleet),
		"peer_id", fleetSelfID(opts.Fleet),
		"go_version", s.build.GoVersion,
		"version", s.build.Version,
	)
	return s, nil
}

// discardHandler drops every record: the default logger for library use.
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (d discardHandler) WithAttrs([]slog.Attr) slog.Handler      { return d }
func (d discardHandler) WithGroup(string) slog.Handler           { return d }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Close cancels every running campaign (their engines observe the context
// between shards), stops the scheduler workers and releases the durable
// store (flushing its manifest). Queued campaigns stay queued; streams of
// cancelled campaigns terminate with status failed. For a loss-free stop,
// call Drain first.
func (s *Server) Close() {
	s.cancel()
	s.wg.Wait()
	if s.store != nil {
		s.store.Close()
	}
	s.wal.close()
	if s.storeDegraded.Swap(false) {
		mStoreDegraded.Set(0)
	}
	// The draining gauge tracks live servers; a closed one is not draining.
	s.mu.Lock()
	if s.draining {
		s.draining = false
		mDraining.Dec()
	}
	s.mu.Unlock()
}

// errDraining rejects submissions during graceful shutdown.
var errDraining = errors.New("serve: draining, no new submissions")

// Drain is the graceful half of shutdown: it stops accepting submissions
// (they get 503, like a full queue) and blocks until every admitted
// campaign reaches a terminal state — in-flight grids finish and commit
// their segments — or ctx expires, whichever is first. The caller then
// Closes the server; nothing measured before the drain is lost.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		mDraining.Inc()
		s.logger.Info("draining", "uptime_s", time.Since(s.start).Seconds())
	}
	s.mu.Unlock()
	for {
		// Every queued campaign is registered, so the registry alone
		// knows what is still live. In-flight fleet adoptions count too:
		// a drain that returned while a peer segment was still being
		// fetched could strand a half-adopted characterization.
		s.mu.Lock()
		live := 0
		for _, c := range s.order {
			if !c.Status().terminal() {
				live++
			}
		}
		s.mu.Unlock()
		if live == 0 && s.adopting.Load() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return fmt.Errorf("serve: drain: %d campaigns still live: %w", live, ctx.Err())
		case <-time.After(10 * time.Millisecond):
		}
	}
}

// AttachSink subscribes a sink to every record of every campaign (the
// daemon's spool/monitoring channel, Fig. 2's cloud log). Records arrive
// in deterministic order within a campaign; campaigns running concurrently
// (Concurrency > 1) interleave.
func (s *Server) AttachSink(sink core.Sink) { s.spool.Subscribe(sink) }

// scheduler drains the run queue until the server closes.
func (s *Server) scheduler() {
	defer s.wg.Done()
	for {
		select {
		case <-s.ctx.Done():
			return
		case c := <-s.queue:
			s.execute(c)
		}
	}
}

// execute runs one campaign through the engine — the spec's strategy picks
// the scheduler — streaming into the campaign's record buffer and, when
// the store is enabled, into an uncommitted segment that becomes durable
// exactly when the campaign finishes cleanly.
func (s *Server) execute(c *Campaign) {
	mQueueLen.Dec()
	mQueueWait.Observe(time.Since(c.queuedAt))
	c.setRunning()
	runStart := time.Now()
	s.logger.Info("campaign running", withTenant([]any{
		"trace_id", c.traceID, "campaign", c.id, "fingerprint", c.fingerprint,
		"queue_wait_ms", float64(time.Since(c.queuedAt).Microseconds()) / 1000}, c.tenant)...)
	if s.gate != nil {
		<-s.gate
	}
	var sink core.Sink = c
	var tee *storeTee
	var resume []core.RunRecord
	if s.store != nil {
		ck := s.checkpointFrames(c)
		var w *store.Writer
		var werr error
		if len(ck) > 0 {
			// Replay the checkpointed prefix into a fresh segment writer;
			// if the replay fails, fall back to a clean from-scratch run.
			if w, werr = s.store.Resume(c.fingerprint, ck); werr != nil {
				ck = nil
			}
		}
		if w == nil {
			w, werr = s.store.Begin(c.fingerprint)
		}
		if werr == nil {
			tee = &storeTee{s: s, c: c, live: c, w: w}
			sink = tee
		} else {
			s.noteStoreError()
			ck = nil
		}
		if len(ck) > 0 {
			// The restored prefix re-enters the live buffer (and spool) as
			// the exact pre-rendered bytes the interrupted process streamed;
			// the engine then executes only the remaining cells, and the
			// committed segment comes out byte-identical to an uninterrupted
			// run.
			c.preload(ck)
			resume = recordsOfFrames(ck)
			s.mu.Lock()
			s.gridsResumed++
			s.runsSaved += len(ck)
			s.mu.Unlock()
			mGridsResumed.Inc()
			mRunsSaved.Add(uint64(len(ck)))
			s.logger.Info("campaign resumed from checkpoint", withTenant([]any{
				"trace_id", c.traceID, "campaign", c.id, "fingerprint", c.fingerprint,
				"runs_saved", len(ck)}, c.tenant)...)
		}
	}
	stats, workers, err := s.runEngine(c, sink, resume)
	if tee != nil {
		// Persist before the campaign turns terminal, so "stream ended" /
		// "drain returned" imply "segment durable". Only complete,
		// successful characterizations are kept: a failed or cancelled
		// campaign's partial stream is worthless (it re-runs on
		// resubmission anyway), and a segment the tee could not fully
		// write must not be committed as if it were whole.
		switch {
		case err != nil:
			tee.w.Abort()
		case tee.err != nil:
			tee.w.Abort()
			s.noteStoreError()
		default:
			if meta, merr := json.Marshal(metaOf(c.spec, workers, stats)); merr != nil {
				tee.w.Abort()
				s.noteStoreError()
			} else if cerr := tee.w.Commit(meta); cerr != nil {
				s.noteStoreError()
			} else {
				s.clearStoreDegraded(c)
				s.logger.Info("campaign committed",
					"trace_id", c.traceID, "campaign", c.id, "fingerprint", c.fingerprint)
			}
		}
	}
	c.finish(stats, workers, err)
	// The intent is terminal either way: done campaigns have their segment
	// (or at worst their buffer), failed ones re-run on resubmission — a
	// requeue at next boot would add nothing.
	s.wal.end(c.fingerprint)
	status := "done"
	if err != nil {
		status = "failed"
	}
	s.logger.Info("campaign finished", withTenant([]any{
		"trace_id", c.traceID, "campaign", c.id, "status", status,
		"runs", stats.Runs, "planned", stats.Planned, "recoveries", stats.Recoveries,
		"run_ms", float64(time.Since(runStart).Microseconds()) / 1000, "err", errString(err)}, c.tenant)...)
}

// errString renders an error for a log attribute without nil panics.
func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// checkpointFrames returns the resumable prefix of a crash checkpoint for
// this campaign, or nil. Only exhaustive grids resume — an adaptive
// schedule's shard list depends on earlier results, so its checkpoint
// cannot be mapped back onto cells. The prefix is trimmed to whole cells
// (the engine's resume unit) and capped at the grid's total; a torn tail
// inside a cell re-runs rather than splices.
func (s *Server) checkpointFrames(c *Campaign) []core.Frame {
	if s.store == nil || c.spec.Strategy == StrategyAdaptive {
		return nil
	}
	ck := s.store.Checkpoint(c.fingerprint)
	if len(ck) == 0 {
		return nil
	}
	grid, err := c.spec.Grid()
	if err != nil {
		return nil
	}
	boards := grid.Boards
	if boards < 1 {
		boards = 1
	}
	perCell := boards * grid.Repetitions
	total := len(grid.Benches) * len(grid.Setups) * perCell
	usable := len(ck)
	if usable > total {
		usable = total
	}
	usable = usable / perCell * perCell
	if usable == 0 {
		return nil
	}
	return ck[:usable]
}

// recordsOfFrames projects checkpoint frames onto the decoded records the
// engine's resume path consumes.
func recordsOfFrames(frames []core.Frame) []core.RunRecord {
	out := make([]core.RunRecord, len(frames))
	for i, f := range frames {
		out[i] = f.Rec
	}
	return out
}

// runEngine dispatches to the spec's scheduler and normalizes the
// (stats, workers, error) triple. resume, when non-empty, is the
// checkpoint-restored record prefix (exhaustive grids only).
func (s *Server) runEngine(c *Campaign, sink core.Sink, resume []core.RunRecord) (campaign.Stats, int, error) {
	cfg := campaign.Config{
		Workers: c.spec.Workers,
		Seed:    c.spec.Seed,
		Sink:    sink,
		Context: s.ctx,
		Resume:  resume,
	}
	// Submit stores the defaulted spec, so Strategy is already resolved.
	if c.spec.Strategy == StrategyAdaptive {
		sched, err := c.spec.Schedule()
		if err != nil {
			return campaign.Stats{}, 0, err
		}
		s.countGridRun()
		rep, err := campaign.RunSchedule(cfg, sched)
		if rep == nil {
			return campaign.Stats{}, 0, err
		}
		return rep.Stats, rep.Workers, err
	}
	grid, err := c.spec.Grid()
	if err != nil {
		return campaign.Stats{}, 0, err
	}
	s.countGridRun()
	rep, err := campaign.RunGrid(cfg, grid)
	if rep == nil {
		return campaign.Stats{}, 0, err
	}
	return rep.Stats, rep.Workers, err
}

func (s *Server) countGridRun() {
	s.mu.Lock()
	s.gridsRun++
	s.mu.Unlock()
	mCampaignsRun.Inc()
}

func (s *Server) noteStoreError() {
	s.mu.Lock()
	s.storeErrors++
	s.mu.Unlock()
	mStoreErrors.Inc()
}

// setStoreDegraded marks the durable store unhealthy: writes are failing
// (disk full, I/O errors) and campaigns continue memory-only. One log line
// per transition, not per record.
func (s *Server) setStoreDegraded(c *Campaign, err error) {
	if !s.storeDegraded.Swap(true) {
		mStoreDegraded.Set(1)
		s.logger.Error("store degraded, campaigns continue memory-only", withTenant([]any{
			"trace_id", c.traceID, "campaign", c.id, "fingerprint", c.fingerprint,
			"err", errString(err)}, c.tenant)...)
	}
}

// clearStoreDegraded flips the degraded flag back on the first successful
// commit: the disk is accepting whole segments again.
func (s *Server) clearStoreDegraded(c *Campaign) {
	if s.storeDegraded.Swap(false) {
		mStoreDegraded.Set(0)
		s.logger.Info("store recovered, durability restored",
			"trace_id", c.traceID, "campaign", c.id, "fingerprint", c.fingerprint)
	}
}

// errQueueFull distinguishes backpressure from bad submissions.
var errQueueFull = errors.New("serve: run queue full")

// Submit registers a spec and enqueues it, or returns the cached campaign
// for an already-known fingerprint — from the in-memory registry, or
// adopted from the durable store (a restarted daemon or an evicted entry:
// the records replay from disk, no grid re-runs). cached is true when no
// new grid run was scheduled. A previously failed campaign does not
// satisfy its fingerprint: resubmitting replaces it with a fresh attempt.
func (s *Server) Submit(spec Spec) (c *Campaign, cached bool, err error) {
	return s.submitTenant(spec, obs.NewTraceID(), "")
}

// SubmitTraced is Submit with a caller-supplied trace ID. A new campaign
// adopts the ID for its whole life — queue, run, commit, replay — so the
// submitter's own logs stitch to the daemon's; a submission answered by
// an existing campaign keeps that campaign's original trace ID (the
// measurement being followed is the first one). Invalid IDs (see
// obs.ValidTraceID) are replaced, never rejected.
func (s *Server) SubmitTraced(spec Spec, trace string) (c *Campaign, cached bool, err error) {
	return s.submitTenant(spec, trace, "")
}

// submitTenant is the full submission path: SubmitTraced plus the tenant
// identity resolved by the auth middleware. A new campaign records the
// tenant for its lifetime (View.Tenant, lifecycle log lines); a cached hit
// keeps the original campaign's tenant — the characterization cache is
// deliberately shared across tenants, since a fingerprint identifies the
// same physical measurement no matter who asks for it. Empty tenant is
// anonymous mode and adds nothing anywhere, keeping auth-off output
// byte-identical to a pre-auth daemon.
func (s *Server) submitTenant(spec Spec, trace, tenant string) (c *Campaign, cached bool, err error) {
	if !obs.ValidTraceID(trace) {
		trace = obs.NewTraceID()
	}
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		mSubmissions.With("rejected").Inc()
		return nil, false, err
	}
	fp := spec.Fingerprint()

	// fromDisk survives the hydration retry: it marks a submission the
	// store answered (adoption or segment read triggered here), which is
	// what the replay-hit counter reports — later hits on the same
	// hydrated buffer are ordinary cache hits.
	fromDisk := false
	// fleetTried caps the peer consultation at one per submission: a
	// fetch that failed (or missed) must fall through to a local run, not
	// loop back to the fleet.
	fleetTried := false
	for {
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			mSubmissions.With("rejected").Inc()
			return nil, false, errDraining
		}
		prev := s.byFP[fp]
		if prev == nil && s.store != nil {
			if e, ok := s.store.Get(fp); ok {
				prev, fromDisk = s.adoptLocked(e)
			}
		}
		if prev != nil && prev.Status() != StatusFailed {
			if prev.needsHydration() {
				// Read the segment back outside the registry lock, then
				// re-examine: a lost segment marks the campaign failed and
				// the next pass schedules a clean re-run, while a
				// transient store error surfaces to the submitter (503,
				// retry) instead of forgetting or re-measuring anything.
				fromDisk = true
				s.mu.Unlock()
				if err := s.hydrate(prev); err != nil {
					return nil, false, err
				}
				continue
			}
			s.submissions++
			s.cacheHits++
			if fromDisk {
				s.replayHits++
				mReplayHits.Inc()
			}
			s.touchLocked(prev)
			if s.store != nil && prev.fromStore {
				s.store.Touch(fp)
			}
			s.mu.Unlock()
			mSubmissions.With("cached").Inc()
			s.logger.Info("submission served from cache", withTenant([]any{
				"trace_id", prev.traceID, "campaign", prev.id,
				"fingerprint", fp, "from_disk", fromDisk}, tenant)...)
			return prev, true, nil
		}
		if s.fleet != nil && !fleetTried {
			// Local miss: before paying for a grid run, ask the fleet —
			// another peer may hold this characterization already. The
			// fetch happens outside the registry lock (it is a network
			// round-trip); on success the adopted campaign satisfies the
			// hit path on the next pass with zero grids run, and on any
			// failure the fleet degrades to local compute.
			fleetTried = true
			s.mu.Unlock()
			// The adopting gauge makes the fetch visible to Drain: a
			// graceful shutdown waits for in-flight adoptions to land (or
			// fail) instead of abandoning a half-replicated segment.
			s.adopting.Add(1)
			s.fleetFetch(fp, trace, tenant)
			s.adopting.Add(-1)
			continue
		}
		break // miss (or failed predecessor): schedule a fresh run
	}
	s.submissions++
	c = newCampaign(fmt.Sprintf("c%06d", s.nextID), spec, fp, s.spool)
	c.traceID = trace
	c.tenant = tenant
	c.queuedAt = time.Now()
	// Enqueue and register under one critical section: a rejected
	// submission leaves no trace, and a registered campaign is always
	// queued. The send is non-blocking, so holding the lock is safe.
	if ferr := fault.Inject("serve.queue"); ferr != nil {
		s.mu.Unlock()
		mSubmissions.With("rejected").Inc()
		return nil, false, fmt.Errorf("%w: %v", errQueueFull, ferr)
	}
	select {
	case s.queue <- c:
	default:
		s.mu.Unlock()
		mSubmissions.With("rejected").Inc()
		return nil, false, errQueueFull
	}
	if werr := s.wal.begin(intentOp{Fingerprint: fp, Spec: &c.spec, TraceID: trace, Tenant: tenant}); werr != nil {
		// Journal trouble must not reject measurable work; the campaign
		// just loses crash-requeue coverage.
		s.logger.Warn("intent journal write failed", "fingerprint", fp, "err", werr)
	}
	s.evictLocked()
	s.nextID++
	s.byID[c.id] = c
	s.byFP[fp] = c
	s.order = append(s.order, c)
	s.touchLocked(c)
	s.mu.Unlock()
	mSubmissions.With("accepted").Inc()
	mQueueLen.Inc()
	s.logger.Info("campaign queued", withTenant([]any{
		"trace_id", trace, "campaign", c.id, "fingerprint", fp,
		"strategy", string(spec.Strategy), "benches", len(spec.Benches)}, tenant)...)
	return c, false, nil
}

// withTenant appends a tenant attribute to a log argument list, or leaves
// it untouched for anonymous submissions so auth-off log lines stay
// exactly as they always were.
func withTenant(args []any, tenant string) []any {
	if tenant == "" {
		return args
	}
	return append(args, "tenant", tenant)
}

// touchLocked bumps a campaign's LRU clock. Callers hold s.mu.
func (s *Server) touchLocked(c *Campaign) {
	s.useSeq++
	c.lastUsed = s.useSeq
}

// evictLocked makes room for one more registry entry under Options.CacheMax
// by dropping least-recently-used terminal campaigns — the registry IS the
// characterization cache, so eviction trades a future re-run (or, with the
// durable store enabled, a cheap replay from disk) for bounded memory.
// Live (queued/running) campaigns are never evicted. Callers hold s.mu.
func (s *Server) evictLocked() {
	for len(s.order) >= s.opts.CacheMax {
		victim := -1
		for i, c := range s.order {
			if !c.Status().terminal() {
				continue
			}
			if victim == -1 || c.lastUsed < s.order[victim].lastUsed {
				victim = i
			}
		}
		if victim == -1 {
			return // everything is live; admit over the cap
		}
		c := s.order[victim]
		s.order = append(s.order[:victim], s.order[victim+1:]...)
		delete(s.byID, c.id)
		if s.byFP[c.fingerprint] == c {
			delete(s.byFP, c.fingerprint)
		}
		s.evictions++
		mEvictions.Inc()
	}
}

// lookup finds a campaign by id, refreshing its LRU position. It does NOT
// hydrate: status polls on adopted campaigns must stay cheap (view()
// reports the on-disk record count), so only the stream handler and the
// Submit hit path pay for a segment read.
func (s *Server) lookup(id string) *Campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.byID[id]
	if c != nil {
		s.touchLocked(c)
	}
	return c
}

// submitResponse is the POST /campaigns reply.
type submitResponse struct {
	ID          string `json:"id"`
	Fingerprint string `json:"fingerprint"`
	Status      Status `json:"status"`
	Cached      bool   `json:"cached"`
	Stream      string `json:"stream"`
	// TraceID follows the campaign through logs, metrics and stream
	// metadata; also sent as the X-Trace-ID response header.
	TraceID string `json:"trace_id"`
}

// writeJSON writes a JSON response body. An Encode failure here means the
// client is already gone or the connection broke mid-body — the status
// line is sent, so nothing can be retracted — but it must not vanish:
// one warn line per failed response keeps "clients see truncated JSON"
// diagnosable from the daemon side.
func (s *Server) writeJSON(w http.ResponseWriter, r *http.Request, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.logger.Warn("response encode failed",
			"path", r.URL.Path, "remote", r.RemoteAddr, "status", status, "err", err)
	}
}

func (s *Server) writeError(w http.ResponseWriter, r *http.Request, status int, err error) {
	s.writeJSON(w, r, status, map[string]string{"error": err.Error()})
}

// maxSubmitBytes caps a POST /campaigns body. A Spec is a few hundred
// bytes of knobs; a megabyte is three orders of magnitude of headroom,
// and anything larger is a mistake or an attack on the decoder.
const maxSubmitBytes = 1 << 20

// errRateLimited is the 429 body; the Retry-After header carries the wait.
var errRateLimited = errors.New("serve: rate limit exceeded, see Retry-After")

// rejectRate writes a 429 with Retry-After and accounts for it.
func (s *Server) rejectRate(w http.ResponseWriter, r *http.Request, tenant string, wait time.Duration) {
	s.rateLimited.Add(1)
	mRateLimited.With(tenantLabel(tenant)).Inc()
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(wait)))
	s.logger.Warn("rate limited",
		"tenant", tenantLabel(tenant), "path", r.URL.Path, "remote", r.RemoteAddr)
	s.writeError(w, r, http.StatusTooManyRequests, errRateLimited)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	key := keyOf(r)
	lim := s.opts.effectiveLimits(key)
	if ok, wait := s.limiter.allow(key.Tenant, lim); !ok {
		mSubmissions.With("rejected").Inc()
		s.rejectRate(w, r, key.Tenant, wait)
		return
	}
	// The body cap turns an unbounded read into a 413; the post-decode
	// Token probe turns silently ignored trailing garbage into a 400
	// (trailing whitespace stays legal — the decoder skips it to EOF).
	r.Body = http.MaxBytesReader(w, r.Body, maxSubmitBytes)
	dec := json.NewDecoder(r.Body)
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		mSubmissions.With("rejected").Inc()
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, r, http.StatusRequestEntityTooLarge,
				fmt.Errorf("serve: spec body exceeds %d bytes", tooBig.Limit))
			return
		}
		s.writeError(w, r, http.StatusBadRequest, fmt.Errorf("serve: decode spec: %w", err))
		return
	}
	if _, err := dec.Token(); err != io.EOF {
		mSubmissions.With("rejected").Inc()
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			s.writeError(w, r, http.StatusRequestEntityTooLarge,
				fmt.Errorf("serve: spec body exceeds %d bytes", tooBig.Limit))
			return
		}
		s.writeError(w, r, http.StatusBadRequest,
			errors.New("serve: trailing data after spec object"))
		return
	}
	// A client-supplied X-Trace-ID seeds a NEW campaign's trace; invalid
	// or absent ones are minted server-side (obs.ValidTraceID gates what
	// can reach headers and log lines).
	c, cached, err := s.submitTenant(spec, r.Header.Get("X-Trace-ID"), key.Tenant)
	if err != nil {
		status := http.StatusBadRequest
		switch {
		case errors.Is(err, errDraining):
			// Draining never un-drains; tell clients to find another
			// daemon rather than hammer this one on its way down.
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", "5")
		case errors.Is(err, errQueueFull), errors.Is(err, errStoreUnavailable):
			// Transient: a queue slot or the store can free up quickly.
			status = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", "1")
		}
		s.writeError(w, r, status, err)
		return
	}
	mTenantSubmissions.With(tenantLabel(key.Tenant)).Inc()
	status := http.StatusAccepted
	if cached {
		status = http.StatusOK
	}
	w.Header().Set("X-Trace-ID", c.traceID)
	s.writeJSON(w, r, status, submitResponse{
		ID:          c.id,
		Fingerprint: c.fingerprint,
		Status:      c.Status(),
		Cached:      cached,
		Stream:      "/campaigns/" + c.id + "/stream",
		TraceID:     c.traceID,
	})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	campaigns := append([]*Campaign(nil), s.order...)
	s.mu.Unlock()
	views := make([]View, 0, len(campaigns))
	for _, c := range campaigns {
		views = append(views, c.view())
	}
	s.writeJSON(w, r, http.StatusOK, views)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(r.PathValue("id"))
	if c == nil {
		s.writeError(w, r, http.StatusNotFound, fmt.Errorf("serve: unknown campaign %q", r.PathValue("id")))
		return
	}
	s.writeJSON(w, r, http.StatusOK, c.view())
}

// handleStream tails a campaign: buffered records first (cache replay),
// then live records as the engine's ordering buffer releases them. NDJSON
// by default — byte-identical to the batch report's JSONL, which is why a
// failed or cancelled campaign's NDJSON stream ends with a plain EOF and
// no terminal marker: any trailer would break the byte-identity contract.
// NDJSON consumers that need to distinguish a complete stream from a
// truncated one must confirm via GET /campaigns/{id} (status "done");
// SSE clients get the terminal status in the "done" event instead.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	// Stream subscriptions draw from the same per-tenant token bucket as
	// submissions, and additionally occupy one of the tenant's concurrent
	// stream slots for as long as the tail lasts.
	key := keyOf(r)
	lim := s.opts.effectiveLimits(key)
	if ok, wait := s.limiter.allow(key.Tenant, lim); !ok {
		s.rejectRate(w, r, key.Tenant, wait)
		return
	}
	ok, release := s.limiter.acquireStream(key.Tenant, lim)
	if !ok {
		// Slots free when some existing stream ends; "1" is the soonest
		// that is honest without tracking stream lifetimes.
		s.rejectRate(w, r, key.Tenant, time.Second)
		return
	}
	defer release()
	c := s.lookup(r.PathValue("id"))
	if c == nil {
		s.writeError(w, r, http.StatusNotFound, fmt.Errorf("serve: unknown campaign %q", r.PathValue("id")))
		return
	}
	// An adopted campaign replays from disk: read the segment back before
	// committing to a 200. A transient store failure is retryable (503);
	// a lost segment marks the campaign failed and the stream below
	// terminates with that status.
	if err := s.hydrate(c); err != nil {
		w.Header().Set("Retry-After", "1")
		s.writeError(w, r, http.StatusServiceUnavailable, err)
		return
	}
	sse := strings.Contains(r.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-cache")
	// The trace ID travels as stream metadata only — a header, never a
	// body byte — because the NDJSON body is contractually byte-identical
	// to the batch report.
	w.Header().Set("X-Trace-ID", c.traceID)
	flusher, _ := w.(http.Flusher)
	// Commit the response immediately: a subscriber to a campaign that has
	// not produced its first record yet should see the stream established
	// (status + headers) now, not when the first frame lands. Body bytes
	// are untouched, so byte-identity with the batch report holds.
	w.WriteHeader(http.StatusOK)
	if flusher != nil {
		flusher.Flush()
	}

	s.subscribers.Add(1)
	mSubscribers.Inc()
	defer func() {
		s.subscribers.Add(-1)
		mSubscribers.Dec()
	}()

	i := 0
	for {
		frames, status := c.next(r.Context(), i)
		if r.Context().Err() != nil {
			return // client went away
		}
		// Every subscriber writes the same shared pre-rendered bytes; no
		// JSON encoding happens on this path, however many clients tail the
		// campaign. SSE reuses the line minus its newline as the data chunk.
		for _, f := range frames {
			if sse {
				if err := countWrite(io.WriteString(w, "data: ")); err != nil {
					return
				}
				if err := countWrite(w.Write(f.Line[:len(f.Line)-1])); err != nil {
					return
				}
				if err := countWrite(io.WriteString(w, "\n\n")); err != nil {
					return
				}
			} else if err := countWrite(w.Write(f.Line)); err != nil {
				return
			}
		}
		i += len(frames)
		if flusher != nil && len(frames) > 0 {
			flusher.Flush()
		}
		if status.terminal() {
			if sse {
				fmt.Fprintf(w, "event: done\ndata: {\"status\":%q}\n\n", status)
			}
			return
		}
	}
}

// handleReadyz is the readiness probe: 200 while the daemon is accepting
// submissions and durably persisting them, 503 while draining (shutdown
// imminent — find another daemon) or while the store is degraded
// (campaigns running memory-only). Liveness stays /healthz; orchestrators,
// load balancers and the CI smoke tests gate traffic here.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	switch {
	case draining:
		w.Header().Set("Retry-After", "5")
		http.Error(w, "draining", http.StatusServiceUnavailable)
	case s.storeDegraded.Load():
		w.Header().Set("Retry-After", "1")
		http.Error(w, "store degraded", http.StatusServiceUnavailable)
	default:
		fmt.Fprintln(w, "ready")
	}
}

// statsResponse is the GET /stats reply.
type statsResponse struct {
	Submissions int  `json:"submissions"`
	CacheHits   int  `json:"cache_hits"`
	GridsRun    int  `json:"grids_run"`
	Evictions   int  `json:"evictions"`
	Cached      int  `json:"cached"`
	CacheMax    int  `json:"cache_max"`
	Queued      int  `json:"queue_len"`
	QueueDepth  int  `json:"queue_depth"`
	Draining    bool `json:"draining,omitempty"`
	// Subscribers counts currently attached stream clients (HTTP tails
	// plus SubscribeChan sinks are the campaignd_active_subscribers gauge;
	// this field reports the HTTP side tracked by this Server).
	Subscribers int64 `json:"subscribers"`
	// DroppedRecords counts records discarded by this server's
	// Drop-policy subscriber sinks (slow consumers; see SubscribeChan).
	DroppedRecords uint64 `json:"dropped_records"`
	// AuthEnabled reports whether a keyring is installed; AuthFailures and
	// RateLimited count rejected requests (401/403 and 429). All three are
	// omitted while zero/false so an anonymous, unlimited daemon's /stats
	// is unchanged from pre-auth builds.
	AuthEnabled  bool   `json:"auth_enabled,omitempty"`
	AuthFailures uint64 `json:"auth_failures,omitempty"`
	RateLimited  uint64 `json:"rate_limited,omitempty"`
	// UptimeS is seconds since New; Build identifies the binary.
	UptimeS  float64        `json:"uptime_s"`
	Build    buildInfo      `json:"build"`
	Statuses map[Status]int `json:"statuses"`
	// Store reports the durable store, when enabled.
	Store *storeStatsView `json:"store,omitempty"`
	// Fleet reports the peer federation, when enabled.
	Fleet *fleetStatsView `json:"fleet,omitempty"`
}

// storeStatsView is the durable store's slice of GET /stats.
type storeStatsView struct {
	// Segments/Bytes cover committed, trusted segments on disk.
	Segments int   `json:"segments"`
	Bytes    int64 `json:"bytes"`
	// ReplayHits counts submissions answered from disk (restart or
	// post-eviction) — each one is a full characterization not re-run.
	ReplayHits int `json:"replay_hits"`
	// Quarantined counts segments recovery refused to trust; Compactions
	// counts segments evicted by the store bounds; Errors counts
	// persistence failures (the campaigns themselves were unaffected).
	Quarantined int `json:"quarantined"`
	Compactions int `json:"compactions"`
	Errors      int `json:"errors,omitempty"`
	// Crash-resume accounting. Checkpoints counts crash checkpoints
	// currently held (salvaged from interrupted segment writes); Requeued
	// counts campaigns re-admitted at boot from the intent journal;
	// GridsResumed counts campaigns that continued from a checkpoint; and
	// RunsSaved is the characterization runs those checkpoints restored —
	// measured work a restart did not repeat.
	Checkpoints  int `json:"checkpoints,omitempty"`
	Requeued     int `json:"requeued,omitempty"`
	GridsResumed int `json:"grids_resumed,omitempty"`
	RunsSaved    int `json:"runs_saved,omitempty"`
	// QuarantineFiles/QuarantineBytes size the quarantine/ directory
	// (bounded by Options.QuarantineMax*). Degraded is true while the
	// store is rejecting writes and campaigns run memory-only.
	QuarantineFiles int   `json:"quarantine_files,omitempty"`
	QuarantineBytes int64 `json:"quarantine_bytes,omitempty"`
	Degraded        bool  `json:"degraded,omitempty"`
	// Boot describes the last boot's warm-load: how many manifest entries
	// were adopted eagerly, how many were deferred to on-demand paging
	// (Options.WarmLoad), and how long store recovery plus warm-load took.
	Boot bootStatsView `json:"boot"`
}

// bootStatsView is the boot-time slice of the store stats.
type bootStatsView struct {
	WarmLoaded int     `json:"warm_loaded"`
	Deferred   int     `json:"deferred"`
	BootMS     float64 `json:"boot_ms"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	resp := statsResponse{
		Submissions: s.submissions,
		CacheHits:   s.cacheHits,
		GridsRun:    s.gridsRun,
		Evictions:   s.evictions,
		Cached:      len(s.order),
		CacheMax:    s.opts.CacheMax,
		Queued:      len(s.queue),
		QueueDepth:  s.opts.QueueDepth,
		Draining:    s.draining,

		Subscribers:    s.subscribers.Load(),
		DroppedRecords: s.subDrops.Load(),
		AuthEnabled:    s.AuthEnabled(),
		AuthFailures:   s.authFailures.Load(),
		RateLimited:    s.rateLimited.Load(),
		UptimeS:        time.Since(s.start).Seconds(),
		Build:          s.build,
		Statuses:       make(map[Status]int),
	}
	if s.store != nil {
		st := s.store.Stats()
		resp.Store = &storeStatsView{
			Segments:        st.Segments,
			Bytes:           st.Bytes,
			ReplayHits:      s.replayHits,
			Quarantined:     st.Quarantined,
			Compactions:     st.Compactions,
			Errors:          s.storeErrors,
			Checkpoints:     st.Checkpoints,
			Requeued:        s.requeued,
			GridsResumed:    s.gridsResumed,
			RunsSaved:       s.runsSaved,
			QuarantineFiles: st.QuarantineFiles,
			QuarantineBytes: st.QuarantineBytes,
			Degraded:        s.storeDegraded.Load(),
			Boot: bootStatsView{
				WarmLoaded: s.warmLoaded,
				Deferred:   s.warmDeferred,
				BootMS:     float64(s.bootDur.Microseconds()) / 1000,
			},
		}
	}
	campaigns := append([]*Campaign(nil), s.order...)
	s.mu.Unlock()
	if s.fleet != nil {
		resp.Fleet = &fleetStatsView{
			Stats:          s.fleet.Stats(),
			Replications:   s.fleetReplications.Load(),
			SegmentsServed: s.fleetServed.Load(),
		}
	}
	for _, c := range campaigns {
		resp.Statuses[c.Status()]++
	}
	s.writeJSON(w, r, http.StatusOK, resp)
}
