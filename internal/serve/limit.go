package serve

import (
	"math"
	"sync"
	"time"
)

// This file is the quota half of the front door: a token-bucket rate
// limiter and a concurrent-subscriber cap, both keyed by tenant. One
// slow-to-refill bucket per tenant means a noisy tenant exhausts only its
// own tokens — its 429s cannot starve another tenant's submissions, which
// is the isolation property the -race starvation test pins.
//
// Buckets refill continuously (tokens accrue with elapsed time, capped at
// the burst size) rather than on a ticker, so there is no background
// goroutine and no tick granularity: a tenant allowed 2 req/s that pauses
// 500ms has exactly one token waiting. The clock is injectable for tests.

// limits is a tenant's effective quota after merging the server defaults
// with the keyfile overrides (Key.RateLimit / RateBurst / MaxStreams).
type limits struct {
	// rate is tokens (requests) per second. <= 0 means unlimited.
	rate float64
	// burst is the bucket capacity. Always >= 1 when rate > 0.
	burst float64
	// maxStreams caps concurrent stream subscribers. <= 0 means unlimited.
	maxStreams int
}

// effectiveLimits merges a key's overrides onto the server defaults:
// nonzero override wins, negative means "explicitly unlimited" (a trusted
// tenant on a rate-limited daemon).
func (o Options) effectiveLimits(key Key) limits {
	l := limits{rate: o.RateLimit, burst: float64(o.RateBurst), maxStreams: o.MaxStreamsPerTenant}
	if key.RateLimit != 0 {
		l.rate = key.RateLimit
	}
	if key.RateBurst != 0 {
		l.burst = float64(key.RateBurst)
	}
	if key.MaxStreams != 0 {
		l.maxStreams = key.MaxStreams
	}
	if l.rate <= 0 {
		l.rate, l.burst = 0, 0
		return l
	}
	if l.burst < 1 {
		// A burst below one token would reject everything; the floor is
		// "at least one full request, or one second's refill if larger".
		l.burst = math.Max(1, math.Ceil(l.rate))
	}
	return l
}

// bucket is one tenant's token bucket plus its live-stream count.
type bucket struct {
	tokens  float64
	last    time.Time
	streams int
}

// limiter owns every tenant's bucket. All methods are safe for concurrent
// use; the critical sections are a few float ops, so one mutex for the
// whole map is cheaper than sharding at daemon request rates.
type limiter struct {
	mu      sync.Mutex
	buckets map[string]*bucket
	// now is the clock; tests swap in a fake to step time deterministically.
	now func() time.Time
}

func newLimiter() *limiter {
	return &limiter{buckets: make(map[string]*bucket), now: time.Now}
}

// tenantBucket finds or mints the tenant's bucket. Callers hold l.mu.
// A new bucket starts full: the first thing a fresh tenant does should
// not be rejected.
func (l *limiter) tenantBucket(tenant string, lim limits) *bucket {
	b := l.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: lim.burst, last: l.now()}
		l.buckets[tenant] = b
	}
	return b
}

// allow spends one token from the tenant's bucket. When the bucket is
// empty it reports false plus how long until the next token accrues —
// the Retry-After the 429 carries.
func (l *limiter) allow(tenant string, lim limits) (ok bool, retryAfter time.Duration) {
	if lim.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.tenantBucket(tenant, lim)
	now := l.now()
	b.tokens = math.Min(lim.burst, b.tokens+now.Sub(b.last).Seconds()*lim.rate)
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / lim.rate * float64(time.Second))
}

// acquireStream reserves a stream-subscriber slot for the tenant. On
// success the returned release MUST be called exactly once when the
// stream ends (it is nil on failure). The cap is per tenant, so one
// tenant saturating its slots never blocks another's streams.
func (l *limiter) acquireStream(tenant string, lim limits) (ok bool, release func()) {
	if lim.maxStreams <= 0 {
		return true, func() {}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.tenantBucket(tenant, lim)
	if b.streams >= lim.maxStreams {
		return false, nil
	}
	b.streams++
	var once sync.Once
	return true, func() {
		once.Do(func() {
			l.mu.Lock()
			b.streams--
			l.mu.Unlock()
		})
	}
}

// retryAfterSeconds rounds a wait up to whole seconds for the Retry-After
// header (minimum 1 — "0" would tell the client to hammer).
func retryAfterSeconds(d time.Duration) int {
	s := int(math.Ceil(d.Seconds()))
	if s < 1 {
		s = 1
	}
	return s
}
