package guardband

import (
	"reflect"
	"testing"
)

// TestFig4SerialParallelIdentical pins the engine's headline guarantee:
// Fig. 4 is byte-identical between serial (one worker) and parallel
// execution at the same seed, at every worker count.
func TestFig4SerialParallelIdentical(t *testing.T) {
	serial, err := Fig4SpecVminWorkers(DefaultSeed, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{4, 16} {
		parallel, err := Fig4SpecVminWorkers(DefaultSeed, 2, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(serial, parallel) {
			t.Errorf("Fig4 results differ between 1 and %d workers", workers)
		}
		if serial.Table().String() != parallel.Table().String() {
			t.Errorf("Fig4 table rendering differs between 1 and %d workers", workers)
		}
	}
}

// TestFig7SerialParallelIdentical does the same for the inter-chip virus
// experiment, whose shards craft on fresh boards.
func TestFig7SerialParallelIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("virus crafting sweep skipped in -short mode")
	}
	serial, err := Fig7InterChipWorkers(DefaultSeed, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig7InterChipWorkers(DefaultSeed, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("Fig7 results differ between serial and parallel execution")
	}
	if serial.Table().String() != parallel.Table().String() {
		t.Error("Fig7 table rendering differs between serial and parallel execution")
	}
}

// TestDramExperimentsSerialParallelIdentical covers the engine-backed DRAM
// flows (Table I scans, Fig. 8a) at several worker counts.
func TestDramExperimentsSerialParallelIdentical(t *testing.T) {
	t1serial, err := Table1BankVariationWorkers(DefaultSeed, 1)
	if err != nil {
		t.Fatal(err)
	}
	t1parallel, err := Table1BankVariationWorkers(DefaultSeed, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(t1serial, t1parallel) {
		t.Error("Table1 results differ between serial and parallel execution")
	}

	f8serial, err := Fig8aBERWorkers(DefaultSeed, 1)
	if err != nil {
		t.Fatal(err)
	}
	f8parallel, err := Fig8aBERWorkers(DefaultSeed, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f8serial, f8parallel) {
		t.Error("Fig8a results differ between serial and parallel execution")
	}
}

// TestFig9SerialParallelIdentical covers the two-operating-point campaign.
func TestFig9SerialParallelIdentical(t *testing.T) {
	serial, err := Fig9JammerSavingsWorkers(DefaultSeed, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Fig9JammerSavingsWorkers(DefaultSeed, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Error("Fig9 results differ between serial and parallel execution")
	}
}
