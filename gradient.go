package guardband

import (
	"fmt"
	"time"

	"repro/internal/dram"
	"repro/internal/report"
	"repro/internal/thermal"
)

// The paper's controller board regulates each DIMM (and rank) element
// independently. This driver exercises that capability: hold the four
// DIMMs at different temperatures simultaneously and show that each DIMM's
// weak-cell count tracks its own temperature — the per-module
// heterogeneity a deployment would exploit by assigning refresh budgets
// per DIMM instead of chip-wide.

// GradientEntry is one DIMM of the gradient experiment.
type GradientEntry struct {
	DIMM     int
	TargetC  float64
	ActualC  float64
	Failures int
}

// GradientResult is the per-DIMM thermal-gradient study.
type GradientResult struct {
	Entries []GradientEntry
	// RegulationMaxDevC is the worst per-channel deviation during hold.
	RegulationMaxDevC float64
}

// ThermalGradient regulates the DIMMs to the given targets (one per DIMM),
// scans with the random DPBench at the relaxed refresh period, and returns
// per-DIMM failure counts.
func ThermalGradient(seed uint64, targetsC []float64) (GradientResult, error) {
	srv, err := NewServer(TTT, seed)
	if err != nil {
		return GradientResult{}, err
	}
	geom := srv.DRAM().Config().Geometry
	if len(targetsC) != geom.DIMMs {
		return GradientResult{}, fmt.Errorf("guardband: need %d targets, got %d", geom.DIMMs, len(targetsC))
	}
	tb, err := thermal.NewTestbed(geom.DIMMs, 30, seed)
	if err != nil {
		return GradientResult{}, err
	}
	for d, target := range targetsC {
		if err := tb.SetTarget(d, target); err != nil {
			return GradientResult{}, err
		}
	}
	dev, err := tb.Settle(0.5, time.Hour, 5*time.Minute)
	if err != nil {
		return GradientResult{}, err
	}
	res := GradientResult{RegulationMaxDevC: dev}
	for d := 0; d < geom.DIMMs; d++ {
		actual, err := tb.Temp(d)
		if err != nil {
			return res, err
		}
		if err := srv.SetDIMMTemp(d, actual); err != nil {
			return res, err
		}
		res.Entries = append(res.Entries, GradientEntry{
			DIMM:    d,
			TargetC: targetsC[d],
			ActualC: actual,
		})
	}
	p, err := dram.NewPattern(dram.RandomPattern)
	if err != nil {
		return res, err
	}
	scan, err := srv.DRAM().ScanPattern(p, RelaxedTREFP, seed)
	if err != nil {
		return res, err
	}
	perDIMM := scan.PerDIMMFailures(geom.DIMMs)
	for d := range res.Entries {
		res.Entries[d].Failures = perDIMM[d]
	}
	return res, nil
}

// Table renders the gradient study.
func (r GradientResult) Table() *report.Table {
	t := report.NewTable("Per-DIMM thermal gradient (independent PID channels)",
		"DIMM", "target", "actual", "weak-cell failures")
	for _, e := range r.Entries {
		t.AddRowf(fmt.Sprintf("%d", e.DIMM),
			fmt.Sprintf("%.0fC", e.TargetC),
			fmt.Sprintf("%.2fC", e.ActualC),
			fmt.Sprintf("%d", e.Failures))
	}
	return t
}
