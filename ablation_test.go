package guardband

import "testing"

func TestAblateResonance(t *testing.T) {
	res, err := AblateResonance(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	// With the mechanism: a resonance-tuned loop with substantial quality.
	if res.WithQuality < 0.55 {
		t.Errorf("with resonance: quality %v, want > 0.55", res.WithQuality)
	}
	// Without it the winner needs no phase structure, so the crafted loop
	// droops strictly less than the resonance-aware one.
	if res.WithoutResonanceDroopMV >= res.WithResonanceDroopMV {
		t.Errorf("ablated droop %v >= full-model droop %v",
			res.WithoutResonanceDroopMV, res.WithResonanceDroopMV)
	}
	// The gap should be meaningful (the resonant term is ~40%% of the
	// virus droop on TTT).
	if res.WithResonanceDroopMV-res.WithoutResonanceDroopMV < 5 {
		t.Errorf("resonance worth only %.1f mV of droop; mechanism too weak",
			res.WithResonanceDroopMV-res.WithoutResonanceDroopMV)
	}
}

func TestAblatePatternCoupling(t *testing.T) {
	res, err := AblatePatternCoupling(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	// With coupling, checkerboard clearly beats the uniform patterns.
	if res.WithCoupling.CheckerOverUniform < 1.15 {
		t.Errorf("with coupling: checker/uniform = %v, want > 1.15",
			res.WithCoupling.CheckerOverUniform)
	}
	// Without coupling that edge collapses toward 1.
	if res.WithoutCoupling.CheckerOverUniform >= res.WithCoupling.CheckerOverUniform {
		t.Errorf("ablation did not shrink checker edge: %v -> %v",
			res.WithCoupling.CheckerOverUniform, res.WithoutCoupling.CheckerOverUniform)
	}
	if res.WithoutCoupling.CheckerOverUniform > 1.10 {
		t.Errorf("without coupling: checker/uniform = %v, want ~1",
			res.WithoutCoupling.CheckerOverUniform)
	}
	// Random keeps an edge in both cases (orientation coverage via
	// multiple rounds), but it shrinks without coupling.
	if res.WithoutCoupling.RandomOverChecker >= res.WithCoupling.RandomOverChecker {
		t.Errorf("random margin did not shrink: %v -> %v",
			res.WithCoupling.RandomOverChecker, res.WithoutCoupling.RandomOverChecker)
	}
}

func TestAblateImplicitRefresh(t *testing.T) {
	res, err := AblateImplicitRefresh(DefaultSeed)
	if err != nil {
		t.Fatal(err)
	}
	if res.WithReuseFailures >= res.WithoutReuseFailures {
		t.Errorf("hot-row reuse did not reduce failures: %d vs %d",
			res.WithReuseFailures, res.WithoutReuseFailures)
	}
	// kmeans re-touches 70%% of its footprint faster than the relaxed
	// refresh period; removing that protection should land far more cells.
	if float64(res.WithoutReuseFailures) < 1.5*float64(res.WithReuseFailures) {
		t.Errorf("implicit refresh worth too little: %d -> %d",
			res.WithReuseFailures, res.WithoutReuseFailures)
	}
}

func TestThermalGradient(t *testing.T) {
	res, err := ThermalGradient(DefaultSeed, []float64{45, 50, 55, 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Entries) != 4 {
		t.Fatalf("entries = %d", len(res.Entries))
	}
	if res.RegulationMaxDevC >= 1.0 {
		t.Errorf("regulation deviation %v degC across a gradient", res.RegulationMaxDevC)
	}
	// Failures must increase monotonically with DIMM temperature, and
	// steeply (the ~e-fold-per-8.7C acceleration).
	for i := 1; i < len(res.Entries); i++ {
		if res.Entries[i].Failures <= res.Entries[i-1].Failures {
			t.Errorf("DIMM %d (%.0fC) failures %d not above DIMM %d (%.0fC) %d",
				i, res.Entries[i].TargetC, res.Entries[i].Failures,
				i-1, res.Entries[i-1].TargetC, res.Entries[i-1].Failures)
		}
	}
	hotOverCold := float64(res.Entries[3].Failures) / float64(res.Entries[0].Failures+1)
	if hotOverCold < 8 {
		t.Errorf("60C/45C failure ratio %v too shallow for the retention model", hotOverCold)
	}
	// Per-channel regulation: actuals near their distinct targets.
	for _, e := range res.Entries {
		if d := e.ActualC - e.TargetC; d > 1 || d < -1 {
			t.Errorf("DIMM %d regulated to %v for target %v", e.DIMM, e.ActualC, e.TargetC)
		}
	}
}

func TestThermalGradientValidation(t *testing.T) {
	if _, err := ThermalGradient(DefaultSeed, []float64{50}); err == nil {
		t.Error("wrong target count accepted")
	}
}
